package entropy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHKnownValues(t *testing.T) {
	cases := []struct {
		p, want float64
	}{
		{0, 0},
		{1, 0},
		{0.5, 1},
		{0.25, 0.8112781244591328}, // -0.25·log2(0.25) - 0.75·log2(0.75)
		{0.75, 0.8112781244591328},
		{0.9, 0.4689955935892812},
	}
	for _, c := range cases {
		if got := H(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("H(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestHClampsOutOfRange(t *testing.T) {
	if H(-0.1) != 0 || H(1.1) != 0 {
		t.Error("out-of-range probabilities must have zero entropy")
	}
}

// TestHBoundaryAndNaN pins the exact boundary behavior the invariant layer
// relies on: the endpoints are exactly zero (not merely small), NaN resolves
// to zero instead of poisoning downstream sums, and infinities are treated
// like any other out-of-domain input. Meaningful under -tags invariants too:
// a NaN slipping through the boundary check would panic NonNegEntropy.
func TestHBoundaryAndNaN(t *testing.T) {
	for _, p := range []float64{0, 1, math.NaN(), math.Inf(1), math.Inf(-1), -0.0} {
		h := H(p)
		if h != 0 {
			t.Errorf("H(%v) = %v, want exactly 0", p, h)
		}
		if math.IsNaN(h) || math.IsInf(h, 0) {
			t.Errorf("H(%v) = %v, must be finite", p, h)
		}
	}
	// A NaN inside a batch must not poison the rest of the sum.
	got := Collective([]float64{0.5, math.NaN(), 0.5})
	if math.IsNaN(got) || math.Abs(got-2) > 1e-12 {
		t.Errorf("Collective with embedded NaN = %v, want 2", got)
	}
	wgot := Weighted([]float64{math.NaN(), 0.5}, []int{7, 4})
	if math.IsNaN(wgot) || math.Abs(wgot-4) > 1e-12 {
		t.Errorf("Weighted with embedded NaN = %v, want 4", wgot)
	}
}

func TestHProperties(t *testing.T) {
	// Symmetry, bounds, and maximum at 0.5 over the whole domain.
	f := func(x float64) bool {
		p := math.Mod(math.Abs(x), 1)
		h := H(p)
		if h < 0 || h > 1 {
			return false
		}
		if math.Abs(h-H(1-p)) > 1e-9 {
			return false
		}
		return h <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHMonotoneTowardHalf(t *testing.T) {
	prev := 0.0
	for p := 0.0; p <= 0.5+1e-9; p += 0.01 {
		h := H(p)
		if h+1e-12 < prev {
			t.Fatalf("H not monotone on [0, 0.5]: H(%v)=%v < %v", p, h, prev)
		}
		prev = h
	}
}

func TestCollective(t *testing.T) {
	got := Collective([]float64{0.5, 0.5, 1, 0})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("Collective = %v, want 2", got)
	}
	if Collective(nil) != 0 {
		t.Error("Collective(nil) must be 0")
	}
}

func TestWeighted(t *testing.T) {
	got := Weighted([]float64{0.5, 1}, []int{3, 100})
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("Weighted = %v, want 3", got)
	}
	// Weighted with unit weights equals Collective.
	probs := []float64{0.1, 0.4, 0.9}
	w := Weighted(probs, []int{1, 1, 1})
	if math.Abs(w-Collective(probs)) > 1e-12 {
		t.Errorf("Weighted(unit) = %v, Collective = %v", w, Collective(probs))
	}
}
