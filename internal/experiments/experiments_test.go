package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quick() Options { return Options{Seed: 2, Quick: true} }

func TestRunnersCoverEveryTableAndFigure(t *testing.T) {
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"table7", "figure2", "figure3a", "figure3b", "figure3c", "ablation"}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("runner %q missing", w)
		}
	}
	if _, ok := ByName("table4"); !ok {
		t.Error("ByName(table4) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName should reject unknown names")
	}
}

func TestTable1Shape(t *testing.T) {
	tab, err := Table1(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Errorf("Table 1 has %d rows, want 12", len(tab.Rows))
	}
	if len(tab.Header) != 7 { // fact + 5 sources + correct value
		t.Errorf("Table 1 header has %d columns", len(tab.Header))
	}
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	tab, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][3]string{
		"TwoEstimate":   {"0.64", "1.00", "0.67"},
		"BayesEstimate": {"0.58", "1.00", "0.58"},
		"IncEstHeu":     {"0.78", "1.00", "0.83"},
	}
	for _, row := range tab.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected method %q", row[0])
			continue
		}
		for i := 0; i < 3; i++ {
			if row[i+1] != w[i] {
				t.Errorf("%s column %d = %s, want %s (paper Table 2)", row[0], i, row[i+1], w[i])
			}
		}
		delete(want, row[0])
	}
	if len(want) != 0 {
		t.Errorf("methods missing from Table 2: %v", want)
	}
}

func TestTable4QuickShape(t *testing.T) {
	tab, err := Table4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Errorf("Table 4 has %d method rows, want 9", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Errorf("row %v has %d cells, header has %d", row[0], len(row), len(tab.Header))
		}
	}
}

func TestTable5IncludesMSEColumn(t *testing.T) {
	tab, err := Table5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Header[len(tab.Header)-1] != "MSE" {
		t.Errorf("last column = %q, want MSE", tab.Header[len(tab.Header)-1])
	}
	if len(tab.Rows) < 5 {
		t.Errorf("Table 5 has %d rows", len(tab.Rows))
	}
}

func TestTable7QuickShape(t *testing.T) {
	tab, err := Table7(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Errorf("Table 7 has %d rows, want 5", len(tab.Rows))
	}
}

func TestFigure2HasBothStrategies(t *testing.T) {
	tab, err := Figure2(quick())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		seen[row[0]] = true
	}
	if !seen["IncEstPS"] || !seen["IncEstScale"] {
		t.Errorf("Figure 2 strategies = %v", seen)
	}
}

func TestFigure3Runners(t *testing.T) {
	for _, run := range []func(Options) (*Table, error){Figure3a, Figure3b, Figure3c} {
		tab, err := run(quick())
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) < 4 {
			t.Errorf("%s has %d rows", tab.ID, len(tab.Rows))
		}
		if len(tab.Header) != 6 { // x + 5 methods
			t.Errorf("%s header has %d columns", tab.ID, len(tab.Header))
		}
	}
}

func TestAblationRuns(t *testing.T) {
	tab, err := Ablation(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 8 {
		t.Errorf("ablation has %d rows", len(tab.Rows))
	}
}

func TestRenderAligned(t *testing.T) {
	tab := &Table{
		ID:     "T",
		Title:  "demo",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: demo ==", "long-column", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick suite takes ~10s")
	}
	var buf bytes.Buffer
	if err := RunAll(quick(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"Table 1", "Table 4", "Table 7", "Figure 2", "Figure 3(c)", "Ablation"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("RunAll output missing %s", id)
		}
	}
}

func TestExtendedRunner(t *testing.T) {
	tab, err := Extended(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Errorf("Extended has %d rows, want 7", len(tab.Rows))
	}
}

func TestSeedsRunner(t *testing.T) {
	tab, err := Seeds(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 15 { // 5 seeds x 3 methods
		t.Errorf("Seeds has %d rows, want 15", len(tab.Rows))
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab, err := Table2(quick())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "method,precision,recall,accuracy") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if !strings.Contains(out, "IncEstHeu,0.78,1.00,0.83") {
		t.Errorf("CSV row missing:\n%s", out)
	}
}
