package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"corroborate/internal/baseline"
	"corroborate/internal/bayes"
	"corroborate/internal/core"
	"corroborate/internal/depend"
	"corroborate/internal/ml"
	"corroborate/internal/pipeline"
	"corroborate/internal/synth"
	"corroborate/internal/truth"
)

// Robustness benchmark: accuracy under attack. The survey literature (Li et
// al., "A Survey on Truth Discovery"; Waguih & Berti-Équille's experimental
// evaluation) shows method rankings invert under spammer-heavy and
// copy-heavy regimes — exactly the regimes the paper's independent-error
// assumption excludes. This harness sweeps every method over a grid of
// x% adversarial sources × y batches of the seeded synth scenario model
// (coordinated spammer blocs, copiers, a mid-stream reliability flip, mild
// churn) so perf PRs can't silently trade away correctness under attack.

// RobustnessCell is one (method, adversarial fraction, batch count) sample.
type RobustnessCell struct {
	Method string `json:"method"`
	// Fraction is the share of sources that are adversarial (spammer-bloc
	// members plus copiers).
	Fraction float64 `json:"adversarial_fraction"`
	// Batches is the number of arrival batches the scenario spans.
	Batches int `json:"batches"`
	// Accuracy is the prediction accuracy over the scenario's labeled facts
	// (offline methods decide the flattened union; stream rows decide batch
	// by batch at arrival time).
	Accuracy float64 `json:"accuracy"`
}

// RobustnessReport is the machine-readable robustness grid that lands in
// BENCH_3.json: fully reproducible from the seed.
type RobustnessReport struct {
	Seed      int64            `json:"seed"`
	Sources   int              `json:"sources"`
	FactsPer  int              `json:"facts_per_batch"`
	Fractions []float64        `json:"fractions"`
	Batches   []int            `json:"batches"`
	Cells     []RobustnessCell `json:"cells"`
}

// robustnessMethods mirrors the full method registry (presentation order)
// plus the dependence-aware voter, which the copier regime exists to test.
func robustnessMethods(seed int64) []truth.Method {
	return []truth.Method{
		baseline.Voting{},
		baseline.Counting{},
		&bayes.Estimate{Seed: seed},
		&baseline.TwoEstimate{},
		&baseline.ThreeEstimate{},
		&baseline.TruthFinder{},
		baseline.AvgLog{},
		baseline.Invest{},
		baseline.PooledInvest{},
		ml.MLSVM{Seed: seed},
		ml.MLLogistic{Seed: seed},
		ml.MLNaiveBayes{Seed: seed},
		core.NewPS(),
		core.NewHeu(),
		core.NewScale(),
		depend.Voting{},
	}
}

// robustnessStreamDecay is the λ the decayed stream row runs with.
const robustnessStreamDecay = 0.6

// robustnessTotalSources is the roster size every grid cell draws from.
const robustnessTotalSources = 12

func (o Options) robustnessFractions() []float64 { return []float64{0, 0.25, 0.5} }

func (o Options) robustnessBatches() []int {
	if o.Quick {
		return []int{2, 3, 4}
	}
	return []int{2, 4, 8}
}

func (o Options) robustnessFactsPerBatch() int {
	if o.Quick {
		return 40
	}
	return 150
}

// robustnessScenario builds the attack world of one grid cell: the
// adversarial fraction splits into a coordinated spammer bloc and copiers
// of an honest leader, one honest source flips reliability mid-stream, and
// mild churn rotates the honest roster.
func (o Options) robustnessScenario(fraction float64, batches int) (*synth.ScenarioWorld, error) {
	adv := int(fraction*robustnessTotalSources + 0.5)
	spammers := (adv + 1) / 2
	copiers := adv - spammers
	honest := robustnessTotalSources - adv
	cfg := synth.ScenarioConfig{
		Batches:       batches,
		FactsPerBatch: o.robustnessFactsPerBatch(),
		HonestSources: honest,
		ChurnRate:     0.1,
		Seed:          o.seed(),
	}
	if spammers > 0 {
		cfg.Blocs = []synth.BlocConfig{{Label: "bloc", Sources: spammers, Strength: 0.5, Camouflage: 0.2}}
	}
	if copiers > 0 {
		cfg.Copiers = []synth.CopierConfig{{Leader: 0, Count: copiers, Noise: 0.15}}
	}
	if honest >= 4 && batches >= 2 {
		cfg.Drift = synth.DriftConfig{FlipSources: 1, FlipAt: batches / 2}
	}
	return synth.GenerateScenario(cfg)
}

// streamAccuracy replays the scenario through a decayed or undecayed
// sharded stream and scores the at-arrival decisions against the ground
// truth. The replay is an operator composition: the scenario's flattened
// vote stream, windowed back into its batches at the batch boundaries,
// each window mapped into the stream's ingest form and its decisions
// aggregated into the running score — no per-batch intermediate beyond
// the one window in flight.
func streamAccuracy(w *synth.ScenarioWorld, decay float64) (float64, error) {
	st := core.NewShardedStream(4)
	if err := st.SetTrustDecay(decay); err != nil {
		return 0, err
	}
	type score struct {
		right, total int
	}
	var sc score
	var err error
	batches := pipeline.KeyWindows(pipeline.FromScenario(w),
		func(r pipeline.ScenarioRow) int { return r.Batch })
	batches(func(win []pipeline.ScenarioRow) bool {
		votes := pipeline.Collect(pipeline.Map(pipeline.FromSlice(win),
			func(r pipeline.ScenarioRow) core.BatchVote {
				return core.BatchVote{Fact: r.Vote.Fact, Source: r.Vote.Source, Vote: r.Vote.Vote}
			}))
		out, aerr := st.AddBatch(votes)
		if aerr != nil {
			err = fmt.Errorf("batch %d: %w", win[0].Batch, aerr)
			return false
		}
		sc = pipeline.Aggregate(pipeline.FromSlice(out), sc, func(s score, sf core.StreamFact) score {
			s.total++
			if (sf.Prediction == truth.True) == (w.Truth[sf.Name] == truth.True) {
				s.right++
			}
			return s
		})
		return true
	})
	if err != nil {
		return 0, err
	}
	if sc.total == 0 {
		return 0, fmt.Errorf("stream decided no facts")
	}
	return float64(sc.right) / float64(sc.total), nil
}

// RobustnessGrid computes the full accuracy-under-attack grid: every
// registered method plus the streaming engine with and without trust decay,
// at every (adversarial fraction, batch count) point.
func RobustnessGrid(o Options) (*RobustnessReport, error) {
	rep := &RobustnessReport{
		Seed:      o.seed(),
		Sources:   robustnessTotalSources,
		FactsPer:  o.robustnessFactsPerBatch(),
		Fractions: o.robustnessFractions(),
		Batches:   o.robustnessBatches(),
	}
	for _, fraction := range rep.Fractions {
		for _, batches := range rep.Batches {
			w, err := o.robustnessScenario(fraction, batches)
			if err != nil {
				return nil, fmt.Errorf("experiments: robustness scenario f=%v b=%d: %w", fraction, batches, err)
			}
			d := w.Dataset()
			reports, err := evalParallel(o, d, robustnessMethods(o.seed()))
			if err != nil {
				return nil, fmt.Errorf("experiments: robustness f=%v b=%d: %w", fraction, batches, err)
			}
			for _, r := range reports {
				rep.Cells = append(rep.Cells, RobustnessCell{
					Method: r.Method, Fraction: fraction, Batches: batches, Accuracy: r.Accuracy,
				})
			}
			for _, stream := range []struct {
				name  string
				decay float64
			}{
				{"IncEstScale-stream", 0},
				{fmt.Sprintf("IncEstScale-stream decay=%.1f", robustnessStreamDecay), robustnessStreamDecay},
			} {
				acc, err := streamAccuracy(w, stream.decay)
				if err != nil {
					return nil, fmt.Errorf("experiments: robustness %s f=%v b=%d: %w", stream.name, fraction, batches, err)
				}
				rep.Cells = append(rep.Cells, RobustnessCell{
					Method: stream.name, Fraction: fraction, Batches: batches, Accuracy: acc,
				})
			}
		}
	}
	return rep, nil
}

// Accuracy returns one cell's accuracy, or -1 if absent.
func (r *RobustnessReport) Accuracy(method string, fraction float64, batches int) float64 {
	for _, c := range r.Cells {
		//lint:ignore floatexact grid fractions are exact constants from robustnessFractions, stored and looked up unmodified; an epsilon could match two adjacent grid points
		if c.Method == method && c.Fraction == fraction && c.Batches == batches {
			return c.Accuracy
		}
	}
	return -1
}

// WriteJSON emits the report as deterministic, indented JSON.
func (r *RobustnessReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Robustness renders the grid as a table: one row per method, one column
// per (fraction × batches) point.
func Robustness(o Options) (*Table, error) {
	rep, err := RobustnessGrid(o)
	if err != nil {
		return nil, err
	}
	return rep.table(), nil
}

func (r *RobustnessReport) table() *Table {
	t := &Table{
		ID:     "Robustness",
		Title:  "accuracy under x% adversarial sources × y batches (spammer bloc + copiers + drift)",
		Header: []string{"method"},
		Notes: []string{
			fmt.Sprintf("seed %d; %d sources; %d facts/batch; adversaries split between a coordinated bloc (strength .5, camouflage .2) and copiers (noise .15); one honest source flips mid-stream",
				r.Seed, r.Sources, r.FactsPer),
		},
	}
	for _, f := range r.Fractions {
		for _, b := range r.Batches {
			t.Header = append(t.Header, fmt.Sprintf("%.0f%%x%db", 100*f, b))
		}
	}
	var methods []string
	seen := make(map[string]bool)
	for _, c := range r.Cells {
		if !seen[c.Method] {
			seen[c.Method] = true
			methods = append(methods, c.Method)
		}
	}
	for _, m := range methods {
		row := []string{m}
		for _, f := range r.Fractions {
			for _, b := range r.Batches {
				row = append(row, fmtF(r.Accuracy(m, f, b)))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RobustnessMarkdown renders the grid as a GitHub-flavored markdown table —
// the generated robustness section of README.md (kept in sync by a test,
// like the registry table).
func RobustnessMarkdown(o Options) (string, error) {
	rep, err := RobustnessGrid(o)
	if err != nil {
		return "", err
	}
	t := rep.table()
	var b []byte
	b = append(b, '|')
	for _, h := range t.Header {
		b = append(b, ' ')
		b = append(b, h...)
		b = append(b, " |"...)
	}
	b = append(b, '\n', '|')
	for range t.Header {
		b = append(b, "---|"...)
	}
	b = append(b, '\n')
	for _, row := range t.Rows {
		b = append(b, '|')
		for _, cell := range row {
			b = append(b, ' ')
			b = append(b, cell...)
			b = append(b, " |"...)
		}
		b = append(b, '\n')
	}
	return string(b), nil
}
