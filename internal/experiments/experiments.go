// Package experiments regenerates every table and figure of Wu & Marian
// (EDBT 2014, §6) on the repository's simulated substrates. Each runner
// returns a structured Table that renders as aligned text; cmd/experiments
// exposes them on the command line and bench_test.go wraps them in
// benchmarks.
//
// EXPERIMENTS.md records, for every experiment, the paper's numbers next to
// the numbers these runners produce and discusses the deviations.
package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"corroborate/internal/baseline"
	"corroborate/internal/bayes"
	"corroborate/internal/core"
	"corroborate/internal/depend"
	"corroborate/internal/engine"
	"corroborate/internal/hubdub"
	"corroborate/internal/metrics"
	"corroborate/internal/ml"
	"corroborate/internal/pipeline"
	"corroborate/internal/restaurant"
	"corroborate/internal/synth"
	"corroborate/internal/truth"
)

// Table is one reproduced table or figure: a header, rows of cells, and
// free-form notes.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// WriteCSV writes the table as comma-separated data (header row first),
// convenient for external plotting of the figures.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = pad(c, w)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Options configures the runners.
type Options struct {
	// Seed drives every simulated substrate; runs are deterministic for a
	// fixed seed. The default experiments use seed 2.
	Seed int64
	// Quick shrinks the worlds (~1/20 of the paper's sizes) so the whole
	// suite runs in seconds; used by tests and quick benchmarks.
	Quick bool
	// Ctx, when non-nil, cancels every corroboration run at its next
	// driver round boundary (cmd/experiments wires SIGINT here).
	Ctx context.Context
	// MaxIter and Tolerance, when non-nil, override each method's
	// iteration defaults via engine.Options — explicit zero is honoured.
	MaxIter   *int
	Tolerance *float64
	// Figure2Samples is how many evenly spaced trajectory points Figure2
	// renders per strategy; 0 means the paper-shaped default of 20.
	Figure2Samples int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 2
	}
	return o.Seed
}

func (o Options) figure2Samples() int {
	if o.Figure2Samples <= 0 {
		return 20
	}
	return o.Figure2Samples
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// engineOpts carries only the iteration knobs; seeding stays with each
// method's constructor so the per-method seed offsets are preserved.
func (o Options) engineOpts() engine.Options {
	return engine.Options{MaxIter: o.MaxIter, Tolerance: o.Tolerance}
}

// run executes one method under the shared engine runtime with the
// options' iteration and cancellation settings.
func (o Options) run(m truth.Method, d *truth.Dataset) (*truth.Result, error) {
	return engine.Run(o.ctx(), m, d, o.engineOpts())
}

// methodSuite returns the Table 4/5/6 method roster in presentation order.
func methodSuite(seed int64) []truth.Method {
	return []truth.Method{
		baseline.Voting{},
		baseline.Counting{},
		&bayes.Estimate{Seed: seed},
		&baseline.TwoEstimate{},
		ml.MLSVM{Seed: seed},
		ml.MLLogistic{Seed: seed},
		core.NewPS(),
		core.NewHeu(),
		core.NewScale(),
	}
}

func fmtF(x float64) string { return fmt.Sprintf("%.2f", x) }

// evalParallel runs every method over the dataset concurrently and returns
// the reports in input order. Each method is independent, so the
// parallelism changes nothing but wall-clock time. The per-method scoring
// (metrics.Evaluate) is itself an operator composition — golden stream ⋈
// predictions, aggregated into the confusion matrix — so this function is
// only the fan-out; no per-table loop materializes intermediate slices.
func evalParallel(o Options, d *truth.Dataset, methods []truth.Method) ([]metrics.Report, error) {
	reports := make([]metrics.Report, len(methods))
	errs := make([]error, len(methods))
	var wg sync.WaitGroup
	for i, m := range methods {
		wg.Add(1)
		go func(i int, m truth.Method) {
			defer wg.Done()
			r, err := o.run(m, d)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", m.Name(), err)
				return
			}
			reports[i] = metrics.Evaluate(d, r)
			reports[i].Method = m.Name()
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// restaurantWorld builds the §6.2 substrate for the options.
func restaurantWorld(o Options) (*restaurant.World, error) {
	cfg := restaurant.Config{Seed: o.seed()}
	if o.Quick {
		cfg.Listings = 2500
		cfg.GoldenSize = 300
		cfg.GoldenTrue = 170
	}
	return restaurant.Generate(cfg)
}

// Table1 prints the motivating example's vote matrix.
func Table1(o Options) (*Table, error) {
	d := truth.MotivatingExample()
	t := &Table{
		ID:     "Table 1",
		Title:  "the motivating scenario: 5 sources and 12 restaurants",
		Header: append(append([]string{"fact"}, d.SourceNames()...), "correct value"),
	}
	for f := 0; f < d.NumFacts(); f++ {
		row := []string{d.FactName(f)}
		for s := 0; s < d.NumSources(); s++ {
			row = append(row, d.Vote(f, s).String())
		}
		row = append(row, d.Label(f).String())
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table2 reproduces the strategy comparison on the motivating example.
func Table2(o Options) (*Table, error) {
	d := truth.MotivatingExample()
	t := &Table{
		ID:     "Table 2",
		Title:  "results of the strategies on the motivating example",
		Header: []string{"method", "precision", "recall", "accuracy"},
		Notes: []string{
			"paper: TwoEstimate 0.64/1/0.67, BayesEstimate 0.58/1/0.58, our strategy 0.78/1/0.83",
		},
	}
	for _, m := range []truth.Method{&baseline.TwoEstimate{}, &bayes.Estimate{Seed: o.seed()}, core.NewHeu()} {
		r, err := o.run(m, d)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on Table 1: %w", m.Name(), err)
		}
		rep := metrics.Evaluate(d, r)
		t.Rows = append(t.Rows, []string{m.Name(), fmtF(rep.Precision), fmtF(rep.Recall), fmtF(rep.Accuracy)})
	}
	return t, nil
}

// Table3 reports source coverage, overlap, and golden-set accuracy of the
// simulated restaurant crawl.
func Table3(o Options) (*Table, error) {
	w, err := restaurantWorld(o)
	if err != nil {
		return nil, err
	}
	st := truth.ComputeStats(w.Dataset)
	names := w.Dataset.SourceNames()
	t := &Table{
		ID:     "Table 3",
		Title:  "source coverage, overlap and accuracy (simulated crawl)",
		Header: append([]string{"measure", "source"}, names...),
	}
	cov := []string{"coverage", ""}
	for s := range names {
		cov = append(cov, fmtF(st.Coverage[s]))
	}
	t.Rows = append(t.Rows, cov)
	for s, n := range names {
		row := []string{"overlap", n}
		for u := range names {
			row = append(row, fmtF(st.Overlap[s][u]))
		}
		t.Rows = append(t.Rows, row)
	}
	acc := []string{"accuracy", ""}
	for s := range names {
		acc = append(acc, fmtF(st.Accuracy[s]))
	}
	t.Rows = append(t.Rows, acc)
	targets := []string{"paper targets: coverage .59/.24/.20/.07/.50/.35",
		"paper targets: accuracy .59/.78/.93/.96/.62/.84"}
	t.Notes = append(t.Notes, targets...)
	return t, nil
}

// Table4 compares all methods on the restaurant golden set.
func Table4(o Options) (*Table, error) {
	w, err := restaurantWorld(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Table 4",
		Title:  "result of the (simulated) real-world dataset",
		Header: []string{"method", "precision", "recall", "accuracy", "F-1", "TN"},
		Notes: []string{
			"paper: Voting .65/1/.66, Counting .94/.65/.76, BayesEstimate .63/1/.67, TwoEstimate .65/1/.66,",
			"paper: ML-SVM .98/.74/.77, ML-Logistic .86/.85/.82, IncEstPS .66/1/.68, IncEstHeu .86/.86/.83 (141 TN)",
		},
	}
	reports, err := evalParallel(o, w.Dataset, methodSuite(o.seed()))
	if err != nil {
		return nil, fmt.Errorf("experiments: Table 4: %w", err)
	}
	for _, rep := range reports {
		t.Rows = append(t.Rows, []string{
			rep.Method, fmtF(rep.Precision), fmtF(rep.Recall), fmtF(rep.Accuracy), fmtF(rep.F1),
			fmt.Sprintf("%d", rep.Confusion.TN),
		})
	}
	return t, nil
}

// Table5 reports corroborated trust scores and their MSE against the
// golden-set source accuracy.
func Table5(o Options) (*Table, error) {
	w, err := restaurantWorld(o)
	if err != nil {
		return nil, err
	}
	st := truth.ComputeStats(w.Dataset)
	names := w.Dataset.SourceNames()
	t := &Table{
		ID:     "Table 5",
		Title:  "the mean square error of trust score",
		Header: append(append([]string{"method"}, names...), "MSE"),
		Notes: []string{
			"paper MSE: TwoEstimate .063, BayesEstimate .066, ML-Logistic .004, IncEstHeu .005",
		},
	}
	ref := []string{"source accuracy"}
	for s := range names {
		ref = append(ref, fmtF(st.Accuracy[s]))
	}
	t.Rows = append(t.Rows, append(ref, "-"))
	for _, m := range []truth.Method{&baseline.TwoEstimate{}, &bayes.Estimate{Seed: o.seed()}, ml.MLLogistic{Seed: o.seed()}, core.NewHeu(), core.NewScale()} {
		r, err := o.run(m, w.Dataset)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s for Table 5: %w", m.Name(), err)
		}
		trust := r.Trust
		if m.Name() == "ML-Logistic" {
			// The classifier does not output source trust; derive it the
			// way the paper does, from the per-source agreement with the
			// classifier's golden-set predictions.
			trust = trustFromPredictions(w.Dataset, r)
		}
		row := []string{m.Name()}
		for s := range names {
			row = append(row, fmtF(trust[s]))
		}
		row = append(row, fmt.Sprintf("%.3f", metrics.TrustMSE(st.Accuracy, trust)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// trustFromPredictions computes per-source trust as the share of each
// source's golden-set votes that agree with the result's predictions: per
// source, the posting list ⋈ golden set, aggregated into agree/total.
func trustFromPredictions(d *truth.Dataset, r *truth.Result) []float64 {
	type tally struct{ agree, total int }
	trust := make([]float64, d.NumSources())
	for s := 0; s < d.NumSources(); s++ {
		onGolden := pipeline.JoinGolden(d, pipeline.FromSourceVotes(d, s),
			func(fv truth.FactVote) int { return fv.Fact })
		c := pipeline.Aggregate(onGolden, tally{}, func(c tally, j pipeline.Joined[truth.FactVote]) tally {
			c.total++
			pred := r.Predictions[j.Row.Fact]
			if (j.Row.Vote == truth.Affirm && pred == truth.True) || (j.Row.Vote == truth.Deny && pred == truth.False) {
				c.agree++
			}
			return c
		})
		if c.total > 0 {
			trust[s] = float64(c.agree) / float64(c.total)
		} else {
			trust[s] = 0.5
		}
	}
	return trust
}

// Table6 measures the wall-clock cost of every method on the restaurant
// world (the ordering, not the 2012 hardware's absolute seconds, is the
// reproducible quantity).
func Table6(o Options) (*Table, error) {
	w, err := restaurantWorld(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Table 6",
		Title:  "time cost of various algorithms",
		Header: []string{"method", "time"},
		Notes: []string{
			"paper (2012 hardware): Voting .60s, Counting .61s, BayesEstimate 7.38s, TwoEstimate .69s,",
			"paper: ML-SMO .99s, ML-Logistic .91s, IncEstPS 1.13s, IncEstHeu 1.15s",
		},
	}
	for _, m := range methodSuite(o.seed()) {
		start := time.Now()
		if _, err := o.run(m, w.Dataset); err != nil {
			return nil, fmt.Errorf("experiments: timing %s: %w", m.Name(), err)
		}
		t.Rows = append(t.Rows, []string{m.Name(), time.Since(start).Round(time.Millisecond).String()})
	}
	return t, nil
}

// Table7 reports the error counts on the simulated Hubdub snapshot.
func Table7(o Options) (*Table, error) {
	cfg := hubdub.Config{Seed: o.seed()}
	if o.Quick {
		cfg.Questions = 60
		cfg.Users = 120
		cfg.TargetAnswers = 140
	}
	w, err := hubdub.Generate(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Table 7",
		Title:  "results over the (simulated) Hubdub dataset",
		Header: []string{"method", "errors"},
		Notes: []string{
			"paper: Voting 292, Counting 327, TwoEstimate 269, ThreeEstimate 270, IncEstHeu 262",
		},
	}
	methods := []truth.Method{
		baseline.Voting{},
		baseline.Counting{},
		&baseline.TwoEstimate{},
		&baseline.ThreeEstimate{},
		&core.IncEstimate{Strategy: core.SelectScale, DeferBand: 0.12, SoftAbsorb: true},
	}
	for _, m := range methods {
		r, err := o.run(m, w.Dataset)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on Hubdub: %w", m.Name(), err)
		}
		t.Rows = append(t.Rows, []string{m.Name(), fmt.Sprintf("%d", w.Errors(r))})
	}
	return t, nil
}

// Figure2 tabulates the multi-value trust trajectories of IncEstPS and
// IncEstScale on the restaurant world (a textual rendering of the paper's
// two plots), sampling up to 20 evenly spaced time points per strategy.
func Figure2(o Options) (*Table, error) {
	w, err := restaurantWorld(o)
	if err != nil {
		return nil, err
	}
	names := w.Dataset.SourceNames()
	t := &Table{
		ID:     "Figure 2",
		Title:  "multi-value trust score at each time point",
		Header: append([]string{"strategy", "t"}, names...),
		Notes: []string{
			"paper: under IncEstPS all trust scores stay at ~1 until the F-vote facts are reached;",
			"paper: under the incremental heuristic the two laggards dip below 0.5 and later recover",
		},
	}
	for _, e := range []*core.IncEstimate{core.NewPS(), core.NewScale()} {
		run, err := e.RunDetailedWith(o.ctx(), w.Dataset, o.engineOpts())
		if err != nil {
			return nil, fmt.Errorf("experiments: %s trajectory: %w", e.Name(), err)
		}
		n := len(run.Trajectory)
		step := n / o.figure2Samples()
		if step == 0 {
			step = 1
		}
		// Sample the trajectory lazily: Stride touches only the rendered
		// time points, it never copies the trajectory.
		pipeline.Stride(pipeline.Range(n), step)(func(i int) bool {
			row := []string{e.Name(), fmt.Sprintf("%d", i)}
			for s := range names {
				row = append(row, fmtF(run.Trajectory[i].Trust[s]))
			}
			t.Rows = append(t.Rows, row)
			return true
		})
	}
	return t, nil
}

// figure3Methods is the roster the paper plots in Figure 3.
func figure3Methods(seed int64) []truth.Method {
	return []truth.Method{
		core.NewScale(),
		&baseline.TwoEstimate{},
		&bayes.Estimate{Seed: seed},
		baseline.Counting{},
		baseline.Voting{},
	}
}

func synthAccuracy(o Options, cfg synth.Config, m truth.Method) (float64, error) {
	w, err := synth.Generate(cfg)
	if err != nil {
		return 0, err
	}
	r, err := o.run(m, w.Dataset)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", m.Name(), err)
	}
	return metrics.Evaluate(w.Dataset, r).Accuracy, nil
}

func figure3(o Options, id, title, xName string, xs []string, cfgs []synth.Config) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{xName},
		Notes: []string{
			"paper shape: the incremental estimator clearly outperforms every other method,",
			"which stay nearly flat around the majority-class accuracy",
		},
	}
	methods := figure3Methods(o.seed())
	for _, m := range methods {
		t.Header = append(t.Header, m.Name())
	}
	type cell struct {
		acc float64
		err error
	}
	cells := make([][]cell, len(xs))
	var wg sync.WaitGroup
	for i := range xs {
		cells[i] = make([]cell, len(methods))
		for j := range methods {
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				acc, err := synthAccuracy(o, cfgs[i], methods[j])
				cells[i][j] = cell{acc: acc, err: err}
			}(i, j)
		}
	}
	wg.Wait()
	for i, x := range xs {
		row := []string{x}
		for j := range methods {
			if cells[i][j].err != nil {
				return nil, fmt.Errorf("experiments: %s at %s=%s: %w", id, xName, x, cells[i][j].err)
			}
			row = append(row, fmtF(cells[i][j].acc))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func (o Options) synthFacts() int {
	if o.Quick {
		return 2000
	}
	return 20000
}

// Figure3a sweeps the total number of sources with 2 inaccurate ones.
func Figure3a(o Options) (*Table, error) {
	var xs []string
	var cfgs []synth.Config
	for total := 3; total <= 11; total += 2 {
		xs = append(xs, fmt.Sprintf("%d", total))
		cfgs = append(cfgs, synth.Config{
			Facts:             o.synthFacts(),
			AccurateSources:   total - 2,
			InaccurateSources: 2,
			Seed:              o.seed(),
		})
	}
	return figure3(o, "Figure 3(a)", "accuracy vs number of sources (2 inaccurate)", "sources", xs, cfgs)
}

// Figure3b sweeps the number of inaccurate sources with 10 total.
func Figure3b(o Options) (*Table, error) {
	var xs []string
	var cfgs []synth.Config
	for inacc := 0; inacc <= 9; inacc += 3 {
		xs = append(xs, fmt.Sprintf("%d", inacc))
		cfgs = append(cfgs, synth.Config{
			Facts:             o.synthFacts(),
			AccurateSources:   10 - inacc,
			InaccurateSources: inacc,
			Seed:              o.seed(),
		})
	}
	return figure3(o, "Figure 3(b)", "accuracy vs number of inaccurate sources (10 total)", "inaccurate", xs, cfgs)
}

// Figure3c sweeps the share η of facts with F votes.
func Figure3c(o Options) (*Table, error) {
	var xs []string
	var cfgs []synth.Config
	for _, eta := range []float64{0.01, 0.02, 0.03, 0.04, 0.05} {
		xs = append(xs, fmt.Sprintf("%.2f", eta))
		cfgs = append(cfgs, synth.Config{
			Facts:             o.synthFacts(),
			AccurateSources:   8,
			InaccurateSources: 2,
			Eta:               eta,
			Seed:              o.seed(),
		})
	}
	return figure3(o, "Figure 3(c)", "accuracy vs percentage of statements with F votes", "eta", xs, cfgs)
}

// Extended compares the related-work methods (TruthFinder, the Pasternack
// & Roth family, dependence-aware voting, naive Bayes) on the restaurant
// world — methods outside the paper's Table 4 roster that round out the
// suite.
func Extended(o Options) (*Table, error) {
	w, err := restaurantWorld(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Extended",
		Title:  "related-work methods on the restaurant world",
		Header: []string{"method", "precision", "recall", "accuracy", "F-1", "TN"},
	}
	methods := []truth.Method{
		&baseline.ThreeEstimate{},
		&baseline.TruthFinder{},
		baseline.AvgLog{},
		baseline.Invest{},
		baseline.PooledInvest{},
		depend.Voting{},
		ml.MLNaiveBayes{Seed: o.seed()},
	}
	reports, err := evalParallel(o, w.Dataset, methods)
	if err != nil {
		return nil, fmt.Errorf("experiments: Extended: %w", err)
	}
	for _, rep := range reports {
		t.Rows = append(t.Rows, []string{
			rep.Method, fmtF(rep.Precision), fmtF(rep.Recall), fmtF(rep.Accuracy), fmtF(rep.F1),
			fmt.Sprintf("%d", rep.Confusion.TN),
		})
	}
	return t, nil
}

// Seeds sweeps the restaurant world across five seeds for the headline
// methods, quantifying the simulator's run-to-run variability (the paper
// had one fixed crawl; our substitute is stochastic, so EXPERIMENTS.md
// reports ranges).
func Seeds(o Options) (*Table, error) {
	t := &Table{
		ID:     "Seeds",
		Title:  "seed sensitivity of the restaurant-world results",
		Header: []string{"seed", "method", "precision", "recall", "accuracy", "TN"},
	}
	for seed := int64(1); seed <= 5; seed++ {
		cfg := restaurant.Config{Seed: seed}
		if o.Quick {
			cfg.Listings = 2500
			cfg.GoldenSize = 300
			cfg.GoldenTrue = 170
		}
		w, err := restaurant.Generate(cfg)
		if err != nil {
			return nil, err
		}
		reports, err := evalParallel(o, w.Dataset, []truth.Method{
			baseline.Voting{}, &baseline.TwoEstimate{}, core.NewScale(),
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: seeds sweep: %w", err)
		}
		for _, rep := range reports {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", seed), rep.Method,
				fmtF(rep.Precision), fmtF(rep.Recall), fmtF(rep.Accuracy),
				fmt.Sprintf("%d", rep.Confusion.TN),
			})
		}
	}
	return t, nil
}

// Ablation reports the design-choice ablations DESIGN.md calls out: the
// selection strategy, the deferral band, soft absorption, and the default
// trust, all on the restaurant world.
func Ablation(o Options) (*Table, error) {
	w, err := restaurantWorld(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation",
		Title:  "design-choice ablations on the restaurant world",
		Header: []string{"variant", "precision", "recall", "accuracy", "TN"},
	}
	variants := []struct {
		name string
		e    *core.IncEstimate
	}{
		{"IncEstHeu (literal ∆H)", core.NewHeu()},
		{"IncEstHeu flipped ∆H", &core.IncEstimate{Strategy: core.SelectHeu, FlipDeltaH: true}},
		{"IncEstHeu full groups", &core.IncEstimate{Strategy: core.SelectHeu, FullGroups: true}},
		{"IncEstHybrid", &core.IncEstimate{Strategy: core.SelectHybrid}},
		{"IncEstScale", core.NewScale()},
		{"IncEstScale no defer band", &core.IncEstimate{Strategy: core.SelectScale}},
		{"IncEstScale soft absorb", &core.IncEstimate{Strategy: core.SelectScale, DeferBand: 0.12, SoftAbsorb: true}},
		{"IncEstScale default 0.7", &core.IncEstimate{Strategy: core.SelectScale, DeferBand: 0.12, InitialTrust: 0.7}},
		{"IncEstPS", core.NewPS()},
	}
	for _, v := range variants {
		r, err := o.run(v.e, w.Dataset)
		if err != nil {
			return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
		}
		rep := metrics.Evaluate(w.Dataset, r)
		t.Rows = append(t.Rows, []string{
			v.name, fmtF(rep.Precision), fmtF(rep.Recall), fmtF(rep.Accuracy),
			fmt.Sprintf("%d", rep.Confusion.TN),
		})
	}
	return t, nil
}

// Runner is a named experiment.
type Runner struct {
	Name string
	Run  func(Options) (*Table, error)
}

// Runners lists every experiment in paper order.
func Runners() []Runner {
	return []Runner{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"table4", Table4},
		{"table5", Table5},
		{"table6", Table6},
		{"table7", Table7},
		{"figure2", Figure2},
		{"figure3a", Figure3a},
		{"figure3b", Figure3b},
		{"figure3c", Figure3c},
		{"extended", Extended},
		{"seeds", Seeds},
		{"ablation", Ablation},
		{"robustness", Robustness},
	}
}

// Names returns the runner names, sorted.
func Names() []string {
	rs := Runners()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	sort.Strings(out)
	return out
}

// ByName finds a runner.
func ByName(name string) (Runner, bool) {
	for _, r := range Runners() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// RunAll executes every experiment and renders it to w.
func RunAll(o Options, w io.Writer) error {
	for _, r := range Runners() {
		t, err := r.Run(o)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", r.Name, err)
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
