package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The robustness smoke test: deterministic accuracy floors on the quick
// grid, so a PR that degrades behavior under attack fails loudly instead
// of only shifting numbers in the next BENCH_N.json. Floors sit below the
// current values (see BENCH_3.json) with margin for benign drift; the
// grid is seeded, so a tripped floor is a real behavior change, not noise.

func quickGrid(t *testing.T) *RobustnessReport {
	t.Helper()
	rep, err := RobustnessGrid(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRobustnessGridShape(t *testing.T) {
	rep := quickGrid(t)
	if len(rep.Fractions) < 3 || len(rep.Batches) < 3 {
		t.Fatalf("grid must sweep >= 3 fractions x >= 3 batch counts, got %v x %v", rep.Fractions, rep.Batches)
	}
	methods := make(map[string]bool)
	for _, c := range rep.Cells {
		methods[c.Method] = true
		if c.Accuracy < 0 || c.Accuracy > 1 {
			t.Errorf("%s f=%v b=%d: accuracy %v out of [0, 1]", c.Method, c.Fraction, c.Batches, c.Accuracy)
		}
	}
	points := len(rep.Fractions) * len(rep.Batches)
	if want := len(methods) * points; len(rep.Cells) != want {
		t.Errorf("%d cells, want %d (%d methods x %d grid points)", len(rep.Cells), want, len(methods), points)
	}
	for _, m := range []string{"Voting", "IncEstScale", "DependVoting", "IncEstScale-stream", "IncEstScale-stream decay=0.6"} {
		if !methods[m] {
			t.Errorf("method %q missing from the grid", m)
		}
	}
}

func TestRobustnessGridDeterministic(t *testing.T) {
	a, b := quickGrid(t), quickGrid(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same options: robustness grids differ")
	}
}

func TestRobustnessFloors(t *testing.T) {
	rep := quickGrid(t)
	floors := []struct {
		method   string
		fraction float64
		batches  int
		min      float64
	}{
		// Clean regime: the paper's methods work when their independence
		// assumption holds.
		{"Voting", 0, 2, 0.90},
		{"TwoEstimate", 0, 2, 0.90},
		{"IncEstScale", 0, 2, 0.90},
		{"IncEstScale-stream", 0, 2, 0.90},
		// Under a 25% coordinated attack the resilient methods must hold.
		{"ML-Logistic", 0.25, 3, 0.85},
		{"TwoEstimate", 0.25, 3, 0.85},
		{"IncEstScale-stream", 0.25, 3, 0.70},
		{"IncEstScale-stream decay=0.6", 0.25, 3, 0.70},
		// Half-adversarial: supervised methods still separate the regimes.
		{"ML-Logistic", 0.5, 4, 0.85},
		{"IncEstScale-stream decay=0.6", 0.5, 4, 0.60},
	}
	for _, f := range floors {
		got := rep.Accuracy(f.method, f.fraction, f.batches)
		if got < 0 {
			t.Errorf("%s f=%v b=%d: cell missing", f.method, f.fraction, f.batches)
		} else if got < f.min {
			t.Errorf("%s f=%v b=%d: accuracy %.3f below floor %.2f", f.method, f.fraction, f.batches, got, f.min)
		}
	}
	// The inversion itself is part of the contract: unsupervised incremental
	// estimation collapses under the coordinated bloc. If this "floor" rises,
	// the attack model went soft — which would quietly weaken every other
	// floor above.
	if got := rep.Accuracy("IncEstScale", 0.25, 3); got > 0.5 {
		t.Errorf("IncEstScale under 25%% attack = %.3f; expected collapse (<= 0.5) — did the scenario model weaken?", got)
	}
}

func TestRobustnessTableRender(t *testing.T) {
	tab, err := Robustness(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 9; len(tab.Header) != want {
		t.Fatalf("header has %d columns, want %d", len(tab.Header), want)
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"IncEstScale-stream", "DependVoting"} {
		if !strings.Contains(b.String(), m) {
			t.Errorf("rendered table is missing row %q", m)
		}
	}
}

func TestRobustnessMarkdownShape(t *testing.T) {
	md, err := RobustnessMarkdown(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(md, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("markdown table has %d lines, want header + separator + rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "| method |") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "|---|") {
		t.Errorf("separator line = %q", lines[1])
	}
	cols := strings.Count(lines[0], "|")
	for i, l := range lines {
		if strings.Count(l, "|") != cols {
			t.Errorf("line %d has ragged columns: %q", i, l)
		}
	}
}
