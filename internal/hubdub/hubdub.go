// Package hubdub simulates the Hubdub dataset used in Wu & Marian
// (EDBT 2014, §6.2.6) and originally in Galland et al. (WSDM 2010): a
// snapshot of settled prediction-market questions from hubdub.com with 830
// candidate answers ("facts") from 471 users on 357 questions.
//
// hubdub.com shut down in 2012 and the snapshot is not redistributable, so
// this package generates a calibrated synthetic equivalent with the same
// shape: a fixed number of questions, each with a handful of mutually
// exclusive candidate answers exactly one of which is correct, and a
// heavy-tailed population of users who each bet on a few questions with
// heterogeneous accuracy. Unlike the paper's main scenario, conflict is
// ample here: betting on one answer is an implicit F vote on the question's
// other answers, which is how Galland et al. model multi-valued questions
// with boolean facts and how the dataset is materialized here.
//
// The evaluation metric matches the papers': each method scores every
// answer-fact, the top-scoring answer of each question is predicted true
// and its siblings false, and the reported number is the total of false
// positives and false negatives over all facts (Table 7).
package hubdub

import (
	"fmt"
	"math/rand"

	"corroborate/internal/truth"
)

// Config parameterizes the simulated snapshot. Zero values reproduce the
// published shape (830 answers, 471 users, 357 questions).
type Config struct {
	// Questions is the number of settled questions; 0 means 357.
	Questions int
	// Users is the number of bettors; 0 means 471.
	Users int
	// TargetAnswers is the total number of candidate answers; 0 means 830.
	// Answers are distributed 2-5 per question to hit the target.
	TargetAnswers int
	// MeanBets is the average number of questions a user bets on; 0 means
	// 3.5 (heavy-tailed: most users bet once or twice, a few dozens).
	MeanBets float64
	// ExpertShare is the fraction of users with high accuracy (drawn from
	// [0.75, 0.95]); the rest draw from [0.35, 0.65]. 0 means 0.25.
	ExpertShare float64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Questions == 0 {
		c.Questions = 357
	}
	if c.Users == 0 {
		c.Users = 471
	}
	if c.TargetAnswers == 0 {
		c.TargetAnswers = 830
	}
	if c.MeanBets == 0 {
		c.MeanBets = 3.5
	}
	if c.ExpertShare == 0 {
		c.ExpertShare = 0.25
	}
	return c
}

// World is the simulated snapshot: the vote dataset plus the question
// structure needed for the argmax evaluation.
type World struct {
	Dataset *truth.Dataset
	// Question[f] is the question index of answer-fact f.
	Question []int
	// Answers[q] lists the fact indices of question q's candidates.
	Answers [][]int
	// Correct[q] is the fact index of question q's settled answer.
	Correct []int
	// UserAccuracy[u] is user u's latent accuracy.
	UserAccuracy []float64
	// Bets is the total number of bets placed.
	Bets int
}

// Generate builds the simulated snapshot.
func Generate(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	if cfg.Questions <= 0 || cfg.Users <= 0 {
		return nil, fmt.Errorf("hubdub: need positive questions and users")
	}
	if cfg.TargetAnswers < 2*cfg.Questions {
		return nil, fmt.Errorf("hubdub: %d answers cannot cover %d questions with at least 2 each", cfg.TargetAnswers, cfg.Questions)
	}
	if cfg.ExpertShare < 0 || cfg.ExpertShare > 1 {
		return nil, fmt.Errorf("hubdub: expert share %v out of [0, 1]", cfg.ExpertShare)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := &World{}
	b := truth.NewBuilder()
	users := make([]int, cfg.Users)
	for u := range users {
		users[u] = b.Source(fmt.Sprintf("user%04d", u))
		if rng.Float64() < cfg.ExpertShare {
			w.UserAccuracy = append(w.UserAccuracy, 0.75+0.2*rng.Float64())
		} else {
			w.UserAccuracy = append(w.UserAccuracy, 0.35+0.3*rng.Float64())
		}
	}

	// Distribute answers: start with 2 per question, sprinkle the surplus.
	counts := make([]int, cfg.Questions)
	for q := range counts {
		counts[q] = 2
	}
	surplus := cfg.TargetAnswers - 2*cfg.Questions
	for i := 0; i < surplus; i++ {
		q := rng.Intn(cfg.Questions)
		if counts[q] < 5 {
			counts[q]++
		} else {
			i-- // retry elsewhere; bounded because surplus < 3·questions
		}
	}

	w.Answers = make([][]int, cfg.Questions)
	w.Correct = make([]int, cfg.Questions)
	for q := 0; q < cfg.Questions; q++ {
		correct := rng.Intn(counts[q])
		for a := 0; a < counts[q]; a++ {
			f := b.Fact(fmt.Sprintf("q%03d-a%d", q, a))
			w.Question = append(w.Question, q)
			w.Answers[q] = append(w.Answers[q], f)
			if a == correct {
				b.Label(f, truth.True)
				w.Correct[q] = f
			} else {
				b.Label(f, truth.False)
			}
		}
	}

	// Betting: each user bets on a heavy-tailed number of random
	// questions; a bet affirms one answer and implicitly denies the rest.
	// Engagement correlates with skill — prediction-market regulars are
	// better than drive-by bettors — which is what lets trust-aware
	// methods beat the per-question majority.
	for u, src := range users {
		mean := cfg.MeanBets * (0.4 + 1.6*(w.UserAccuracy[u]-0.35))
		if mean < 1 {
			mean = 1
		}
		bets := 1 + int(rng.ExpFloat64()*mean)
		if bets > cfg.Questions {
			bets = cfg.Questions
		}
		seen := make(map[int]bool, bets)
		for i := 0; i < bets; i++ {
			q := rng.Intn(cfg.Questions)
			if seen[q] {
				continue
			}
			seen[q] = true
			var pick int
			if rng.Float64() < w.UserAccuracy[u] {
				pick = w.Correct[q]
			} else {
				// A wrong answer, uniformly among the siblings.
				for {
					pick = w.Answers[q][rng.Intn(len(w.Answers[q]))]
					if pick != w.Correct[q] {
						break
					}
				}
			}
			for _, f := range w.Answers[q] {
				if f == pick {
					b.Vote(f, src, truth.Affirm)
				} else {
					b.Vote(f, src, truth.Deny)
				}
			}
			w.Bets++
		}
	}
	w.Dataset = b.Build()
	return w, nil
}

// Errors evaluates a corroboration result with the papers' metric: the
// total number of false positives plus false negatives over all
// answer-facts, using each method's own per-fact decisions (Eq. 2
// thresholding). This is the number Table 7 reports.
func (w *World) Errors(r *truth.Result) int {
	errs := 0
	for f := 0; f < w.Dataset.NumFacts(); f++ {
		if r.Predictions[f] != w.Dataset.Label(f) {
			errs++
		}
	}
	return errs
}

// ArgmaxErrors is an alternative question-level metric: per question the
// top-probability answer (ties to the lower fact index) is predicted true
// and the rest false; every mispredicted question contributes one false
// positive and one false negative.
func (w *World) ArgmaxErrors(r *truth.Result) int {
	errs := 0
	for q, answers := range w.Answers {
		best := answers[0]
		for _, f := range answers[1:] {
			if r.FactProb[f] > r.FactProb[best] {
				best = f
			}
		}
		if best != w.Correct[q] {
			errs += 2
		}
	}
	return errs
}

// QuestionsWrong counts the questions whose argmax answer is incorrect.
func (w *World) QuestionsWrong(r *truth.Result) int { return w.ArgmaxErrors(r) / 2 }
