package hubdub

import (
	"testing"

	"corroborate/internal/baseline"
	"corroborate/internal/core"
	"corroborate/internal/truth"
)

func TestGenerateShape(t *testing.T) {
	w, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := w.Dataset
	if d.NumFacts() != 830 {
		t.Errorf("answers = %d, want 830", d.NumFacts())
	}
	if d.NumSources() != 471 {
		t.Errorf("users = %d, want 471", d.NumSources())
	}
	if len(w.Answers) != 357 {
		t.Errorf("questions = %d, want 357", len(w.Answers))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Exactly one correct answer per question.
	for q, answers := range w.Answers {
		if len(answers) < 2 || len(answers) > 5 {
			t.Fatalf("question %d has %d answers", q, len(answers))
		}
		correct := 0
		for _, f := range answers {
			if d.Label(f) == truth.True {
				correct++
			}
		}
		if correct != 1 {
			t.Errorf("question %d has %d correct answers", q, correct)
		}
	}
	if w.Bets == 0 {
		t.Error("no bets placed")
	}
}

func TestConflictIsAmple(t *testing.T) {
	// §6.2.6 uses Hubdub precisely because it has plenty of conflicting
	// votes; the affirmative-only share must be low, unlike the
	// restaurant scenario.
	w, err := Generate(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if share := w.Dataset.AffirmativeShare(); share > 0.5 {
		t.Errorf("affirmative-only share = %v, want < 0.5", share)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []Config{
		{Questions: -1},
		{Questions: 100, TargetAnswers: 150},
		{ExpertShare: 2},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate should fail", i)
		}
	}
}

func TestErrorsMetric(t *testing.T) {
	w, err := Generate(Config{Questions: 10, Users: 5, TargetAnswers: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A perfect oracle result has zero errors.
	oracle := truth.NewResult("oracle", w.Dataset)
	for f := 0; f < w.Dataset.NumFacts(); f++ {
		if w.Dataset.Label(f) == truth.True {
			oracle.FactProb[f] = 1
		} else {
			oracle.FactProb[f] = 0
		}
	}
	oracle.Finalize()
	if got := w.Errors(oracle); got != 0 {
		t.Errorf("oracle errors = %d, want 0", got)
	}
	// An inverted result misses every question: 2 errors each.
	inverted := truth.NewResult("inverted", w.Dataset)
	for f := 0; f < w.Dataset.NumFacts(); f++ {
		if w.Dataset.Label(f) == truth.True {
			inverted.FactProb[f] = 0
		} else {
			inverted.FactProb[f] = 1
		}
	}
	inverted.Finalize()
	if got := w.Errors(inverted); got != w.Dataset.NumFacts() {
		t.Errorf("inverted errors = %d, want every fact (%d)", got, w.Dataset.NumFacts())
	}
	if got := w.ArgmaxErrors(inverted); got != 2*len(w.Answers) {
		t.Errorf("inverted argmax errors = %d, want %d", got, 2*len(w.Answers))
	}
	if w.QuestionsWrong(inverted) != len(w.Answers) {
		t.Error("QuestionsWrong should count every question")
	}
}

func TestMethodOrderingMatchesTable7(t *testing.T) {
	// Table 7's shape: the iterative corroborators beat Voting, Counting
	// is the worst because no answer ever gathers a majority of all 471
	// users, and ThreeEstimate lands near TwoEstimate. (EXPERIMENTS.md
	// discusses the IncEstimate variants' measured behaviour on this
	// conflict-heavy substitute, which does not reproduce the paper's
	// 7-error win over TwoEstimate.)
	w, err := Generate(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run := func(m truth.Method) int {
		t.Helper()
		r, err := m.Run(w.Dataset)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		return w.Errors(r)
	}
	voting := run(baseline.Voting{})
	counting := run(baseline.Counting{})
	two := run(&baseline.TwoEstimate{})
	three := run(&baseline.ThreeEstimate{})
	scale := run(&core.IncEstimate{Strategy: core.SelectScale, DeferBand: 0.12, SoftAbsorb: true})

	if counting <= voting {
		t.Errorf("Counting (%d) should have more errors than Voting (%d)", counting, voting)
	}
	if counting != w.Dataset.NumFacts()-len(w.Answers)*0 && counting < 300 {
		t.Errorf("Counting errors = %d, want near the number of true facts", counting)
	}
	if two >= voting {
		t.Errorf("TwoEstimate (%d) should beat Voting (%d)", two, voting)
	}
	diff := two - three
	if diff < 0 {
		diff = -diff
	}
	if diff > 60 {
		t.Errorf("ThreeEstimate (%d) should land near TwoEstimate (%d)", three, two)
	}
	// The scale-profile IncEstimate stays in the published band even
	// though it does not win here.
	if scale < 150 || scale > 400 {
		t.Errorf("IncEstScale errors = %d, outside the plausible band", scale)
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(Config{Seed: 5})
	b, _ := Generate(Config{Seed: 5})
	if a.Dataset.NumVotes() != b.Dataset.NumVotes() || a.Bets != b.Bets {
		t.Fatal("generation is not deterministic")
	}
}
