package truth

import (
	"fmt"
	"testing"
)

func benchDataset(facts, sources int) *Dataset {
	b := NewBuilder()
	for s := 0; s < sources; s++ {
		b.Source(fmt.Sprintf("s%03d", s))
	}
	for f := 0; f < facts; f++ {
		fi := b.Fact(fmt.Sprintf("f%06d", f))
		for s := 0; s < sources; s++ {
			if (f+s)%3 == 0 {
				v := Affirm
				if (f*s)%17 == 0 {
					v = Deny
				}
				b.Vote(fi, s, v)
			}
		}
	}
	return b.Build()
}

func BenchmarkBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchDataset(2000, 10)
	}
}

func BenchmarkSignature(b *testing.B) {
	d := benchDataset(2000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Signature(i % d.NumFacts())
	}
}

func BenchmarkVoteLookup(b *testing.B) {
	d := benchDataset(2000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Vote(i%d.NumFacts(), i%d.NumSources())
	}
}

func BenchmarkComputeStats(b *testing.B) {
	d := benchDataset(5000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeStats(d)
	}
}

func BenchmarkValidate(b *testing.B) {
	d := benchDataset(5000, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
