package truth

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// JSON dataset format
//
// A self-describing alternative to the CSV format, convenient for sparse
// datasets with many sources:
//
//	{
//	  "sources": ["yelp", "menupages"],
//	  "facts": [
//	    {"name": "dannys", "votes": {"yelp": "T", "menupages": "F"},
//	     "label": "false", "golden": true}
//	  ]
//	}
//
// The label and golden fields are optional; votes reference sources by
// name and may mention sources absent from the top-level list (they are
// interned on the fly).

type jsonDataset struct {
	Sources []string   `json:"sources"`
	Facts   []jsonFact `json:"facts"`
}

type jsonFact struct {
	Name   string            `json:"name"`
	Votes  map[string]string `json:"votes"`
	Label  string            `json:"label,omitempty"`
	Golden bool              `json:"golden,omitempty"`
}

// WriteJSON serializes the dataset in the documented JSON format.
func WriteJSON(w io.Writer, d *Dataset) error {
	out := jsonDataset{Sources: d.SourceNames()}
	golden := make(map[int]bool)
	if d.HasGolden() {
		for _, f := range d.Golden() {
			golden[f] = true
		}
	}
	for f := 0; f < d.NumFacts(); f++ {
		jf := jsonFact{
			Name:  d.FactName(f),
			Votes: make(map[string]string, len(d.VotesOnFact(f))),
		}
		for _, sv := range d.VotesOnFact(f) {
			jf.Votes[d.SourceName(sv.Source)] = sv.Vote.String()
		}
		if l := d.Label(f); l != Unknown {
			jf.Label = l.String()
		}
		if d.HasGolden() {
			jf.Golden = golden[f]
		} else {
			jf.Golden = d.Label(f) != Unknown
		}
		out.Facts = append(out.Facts, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("truth: encoding JSON dataset: %w", err)
	}
	return nil
}

// ReadJSON parses a dataset in the documented JSON format.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var in jsonDataset
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("truth: decoding JSON dataset: %w", err)
	}
	b := NewBuilder()
	b.AddSources(in.Sources...)
	var golden []int
	anyGolden := false
	for i, jf := range in.Facts {
		if jf.Name == "" {
			return nil, fmt.Errorf("truth: JSON fact %d has no name", i)
		}
		f := b.Fact(jf.Name)
		// Visit votes in sorted source order: a vote naming a source absent
		// from the "sources" list interns it on first sight, and ID
		// assignment must not depend on Go's map iteration order.
		srcs := make([]string, 0, len(jf.Votes))
		for src := range jf.Votes {
			srcs = append(srcs, src)
		}
		sort.Strings(srcs)
		for _, src := range srcs {
			v, err := ParseVote(jf.Votes[src])
			if err != nil {
				return nil, fmt.Errorf("truth: JSON fact %q: %w", jf.Name, err)
			}
			if v != Absent {
				b.Vote(f, b.Source(src), v)
			}
		}
		if jf.Label != "" {
			l, err := ParseLabel(jf.Label)
			if err != nil {
				return nil, fmt.Errorf("truth: JSON fact %q: %w", jf.Name, err)
			}
			b.Label(f, l)
		}
		if jf.Golden {
			golden = append(golden, f)
			anyGolden = true
		}
	}
	if anyGolden {
		b.Golden(golden)
	}
	return b.Build(), nil
}

// SaveJSON writes the dataset to a file, creating or truncating it.
func SaveJSON(path string, d *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("truth: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteJSON(f, d)
}

// LoadJSON reads a dataset from a file.
func LoadJSON(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("truth: opening %s: %w", path, err)
	}
	defer f.Close()
	d, err := ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("truth: parsing %s: %w", path, err)
	}
	return d, nil
}

// resultJSON is the serialized form of a corroboration result.
type resultJSON struct {
	Method string             `json:"method"`
	Facts  []resultFactJSON   `json:"facts"`
	Trust  map[string]float64 `json:"trust,omitempty"`
}

type resultFactJSON struct {
	Name        string  `json:"name"`
	Probability float64 `json:"probability"`
	Prediction  string  `json:"prediction"`
}

// WriteResultJSON serializes a result against its dataset (fact and source
// names come from the dataset).
func WriteResultJSON(w io.Writer, d *Dataset, r *Result) error {
	if err := r.Check(d); err != nil {
		return err
	}
	out := resultJSON{Method: r.Method}
	for f := 0; f < d.NumFacts(); f++ {
		out.Facts = append(out.Facts, resultFactJSON{
			Name:        d.FactName(f),
			Probability: r.FactProb[f],
			Prediction:  r.Predictions[f].String(),
		})
	}
	if r.Trust != nil {
		out.Trust = make(map[string]float64, d.NumSources())
		for s := 0; s < d.NumSources(); s++ {
			out.Trust[d.SourceName(s)] = r.Trust[s]
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("truth: encoding JSON result: %w", err)
	}
	return nil
}
