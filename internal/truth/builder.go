package truth

import (
	"fmt"
	"sort"
)

// Builder accumulates sources, facts, votes, and labels and produces an
// immutable Dataset. The zero value is ready to use.
//
// Votes may be added in any order; Build sorts posting lists. Adding a vote
// for a (fact, source) pair that already has one overwrites the earlier vote
// (last writer wins), which makes builders convenient for layered dataset
// construction (e.g. a simulator first listing a restaurant and later
// marking it CLOSED).
type Builder struct {
	sourceNames []string
	sourceIdx   map[string]int
	factNames   []string
	factIdx     map[string]int
	labels      []Label
	golden      []int

	// votes[f] maps source index -> vote.
	votes []map[int]Vote
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		sourceIdx: make(map[string]int),
		factIdx:   make(map[string]int),
	}
}

// Source interns a source by name and returns its index.
func (b *Builder) Source(name string) int {
	if i, ok := b.sourceIdx[name]; ok {
		return i
	}
	i := len(b.sourceNames)
	b.sourceNames = append(b.sourceNames, name)
	b.sourceIdx[name] = i
	return i
}

// Fact interns a fact by name and returns its index. New facts start with
// an Unknown label.
func (b *Builder) Fact(name string) int {
	if i, ok := b.factIdx[name]; ok {
		return i
	}
	i := len(b.factNames)
	b.factNames = append(b.factNames, name)
	b.factIdx[name] = i
	b.labels = append(b.labels, Unknown)
	b.votes = append(b.votes, nil)
	return i
}

// AddSources interns several sources at once.
func (b *Builder) AddSources(names ...string) {
	for _, n := range names {
		b.Source(n)
	}
}

// AddFacts interns several facts at once.
func (b *Builder) AddFacts(names ...string) {
	for _, n := range names {
		b.Fact(n)
	}
}

// Vote records source s's vote on fact f. Recording Absent removes any
// earlier vote. Indices must come from Source/Fact (or be in range).
func (b *Builder) Vote(f, s int, v Vote) {
	if f < 0 || f >= len(b.factNames) {
		panic(fmt.Sprintf("truth: fact index %d out of range", f))
	}
	if s < 0 || s >= len(b.sourceNames) {
		panic(fmt.Sprintf("truth: source index %d out of range", s))
	}
	if !v.Valid() {
		panic(fmt.Sprintf("truth: invalid vote %d", int8(v)))
	}
	if v == Absent {
		delete(b.votes[f], s)
		return
	}
	if b.votes[f] == nil {
		b.votes[f] = make(map[int]Vote, 4)
	}
	b.votes[f][s] = v
}

// VoteNamed records a vote by source and fact name, interning both.
func (b *Builder) VoteNamed(fact, source string, v Vote) {
	b.Vote(b.Fact(fact), b.Source(source), v)
}

// Label sets the ground-truth label of fact f.
func (b *Builder) Label(f int, l Label) {
	if !l.Valid() {
		panic(fmt.Sprintf("truth: invalid label %d", int8(l)))
	}
	b.labels[f] = l
}

// LabelNamed sets the ground-truth label of a fact by name, interning it.
func (b *Builder) LabelNamed(fact string, l Label) { b.Label(b.Fact(fact), l) }

// Golden declares the explicit golden evaluation subset. Passing nil keeps
// the default behaviour (all labeled facts are evaluated).
func (b *Builder) Golden(facts []int) {
	b.golden = append([]int(nil), facts...)
}

// NumFacts returns the number of facts interned so far.
func (b *Builder) NumFacts() int { return len(b.factNames) }

// NumSources returns the number of sources interned so far.
func (b *Builder) NumSources() int { return len(b.sourceNames) }

// Build freezes the builder into a Dataset. The Builder remains usable;
// subsequent mutations do not affect the returned Dataset.
func (b *Builder) Build() *Dataset {
	d := &Dataset{
		sourceNames: append([]string(nil), b.sourceNames...),
		factNames:   append([]string(nil), b.factNames...),
		labels:      append([]Label(nil), b.labels...),
		factVotes:   make([][]SourceVote, len(b.factNames)),
		sourceVotes: make([][]FactVote, len(b.sourceNames)),
	}
	if b.golden != nil {
		d.golden = append([]int(nil), b.golden...)
		sort.Ints(d.golden)
	}
	for f, m := range b.votes {
		if len(m) == 0 {
			continue
		}
		list := make([]SourceVote, 0, len(m))
		for s, v := range m {
			list = append(list, SourceVote{Source: s, Vote: v})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].Source < list[j].Source })
		d.factVotes[f] = list
		d.votes += len(list)
	}
	for f, list := range d.factVotes {
		for _, sv := range list {
			d.sourceVotes[sv.Source] = append(d.sourceVotes[sv.Source], FactVote{Fact: f, Vote: sv.Vote})
		}
	}
	// Fact posting lists are visited in increasing fact order, so the
	// source-orientation lists are already sorted by fact index.
	return d
}
