package truth

import (
	"fmt"
	"slices"
	"sort"
)

// Builder accumulates sources, facts, votes, and labels and produces an
// immutable Dataset. The zero value is ready to use.
//
// Votes may be added in any order; Build sorts posting lists. Adding a vote
// for a (fact, source) pair that already has one overwrites the earlier vote
// (last writer wins), which makes builders convenient for layered dataset
// construction (e.g. a simulator first listing a restaurant and later
// marking it CLOSED).
//
// Ingestion is allocation-free once capacity exists: names intern into
// append-only symbol tables and every vote is three appends onto flat
// parallel log columns (fact ID, source ID, vote) — recording Absent
// appends a tombstone rather than mutating anything. Call Grow with the
// expected vote count to reserve the log up front; after that, Vote
// performs zero allocations (TestVoteIngestionAllocFree pins this).
// Build resolves the log into the Dataset's columnar form in one sort +
// two linear passes.
type Builder struct {
	sources Interner
	facts   Interner
	labels  []Label
	golden  []int

	// The vote log: parallel columns, one entry per Vote call, in call
	// order. Later entries for the same (fact, source) supersede earlier
	// ones; Absent entries are tombstones.
	logFact []uint32
	logSrc  []uint32
	logVote []Vote
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Source interns a source by name and returns its index.
func (b *Builder) Source(name string) int { return int(b.sources.Intern(name)) }

// Fact interns a fact by name and returns its index. New facts start with
// an Unknown label.
func (b *Builder) Fact(name string) int {
	n := b.facts.Len()
	i := int(b.facts.Intern(name))
	if i == n {
		b.labels = append(b.labels, Unknown)
	}
	return i
}

// AddSources interns several sources at once.
func (b *Builder) AddSources(names ...string) {
	for _, n := range names {
		b.Source(n)
	}
}

// AddFacts interns several facts at once.
func (b *Builder) AddFacts(names ...string) {
	for _, n := range names {
		b.Fact(n)
	}
}

// Grow reserves log capacity for at least n additional votes, so that the
// next n Vote calls append without reallocating.
func (b *Builder) Grow(n int) {
	b.logFact = slices.Grow(b.logFact, n)
	b.logSrc = slices.Grow(b.logSrc, n)
	b.logVote = slices.Grow(b.logVote, n)
}

// Vote records source s's vote on fact f. Recording Absent removes any
// earlier vote. Indices must come from Source/Fact (or be in range).
func (b *Builder) Vote(f, s int, v Vote) {
	if f < 0 || f >= b.facts.Len() {
		panic(fmt.Sprintf("truth: fact index %d out of range", f))
	}
	if s < 0 || s >= b.sources.Len() {
		panic(fmt.Sprintf("truth: source index %d out of range", s))
	}
	if !v.Valid() {
		panic(fmt.Sprintf("truth: invalid vote %d", int8(v)))
	}
	b.logFact = append(b.logFact, uint32(f))
	b.logSrc = append(b.logSrc, uint32(s))
	b.logVote = append(b.logVote, v)
}

// VoteNamed records a vote by source and fact name, interning both.
func (b *Builder) VoteNamed(fact, source string, v Vote) {
	b.Vote(b.Fact(fact), b.Source(source), v)
}

// Label sets the ground-truth label of fact f.
func (b *Builder) Label(f int, l Label) {
	if !l.Valid() {
		panic(fmt.Sprintf("truth: invalid label %d", int8(l)))
	}
	b.labels[f] = l
}

// LabelNamed sets the ground-truth label of a fact by name, interning it.
func (b *Builder) LabelNamed(fact string, l Label) { b.Label(b.Fact(fact), l) }

// Golden declares the explicit golden evaluation subset. Passing nil keeps
// the default behaviour (all labeled facts are evaluated).
func (b *Builder) Golden(facts []int) {
	b.golden = append([]int(nil), facts...)
}

// NumFacts returns the number of facts interned so far.
func (b *Builder) NumFacts() int { return b.facts.Len() }

// NumSources returns the number of sources interned so far.
func (b *Builder) NumSources() int { return b.sources.Len() }

// Build freezes the builder into a Dataset. The Builder remains usable;
// subsequent mutations do not affect the returned Dataset.
//
// The vote log is resolved by sorting a permutation by (fact, source, log
// position) and keeping each pair's last write (dropping it when that write
// is an Absent tombstone); the surviving entries land in CSR order, so the
// columns and both iteration views follow in linear passes.
func (b *Builder) Build() *Dataset {
	numFacts, numSources := b.facts.Len(), b.sources.Len()
	d := &Dataset{
		sources: *b.sources.Clone(),
		facts:   *b.facts.Clone(),
		labels:  append([]Label(nil), b.labels...),
	}
	if b.golden != nil {
		d.golden = append([]int(nil), b.golden...)
		sort.Ints(d.golden)
	}
	n := len(b.logVote)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		pi, pj := perm[i], perm[j]
		if b.logFact[pi] != b.logFact[pj] {
			return b.logFact[pi] < b.logFact[pj]
		}
		if b.logSrc[pi] != b.logSrc[pj] {
			return b.logSrc[pi] < b.logSrc[pj]
		}
		return pi < pj
	})
	d.factStarts = make([]uint32, numFacts+1)
	d.voteSources = make([]uint32, 0, n)
	d.voteValues = make([]Vote, 0, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && b.logFact[perm[j+1]] == b.logFact[perm[i]] && b.logSrc[perm[j+1]] == b.logSrc[perm[i]] {
			j++
		}
		if v := b.logVote[perm[j]]; v != Absent {
			d.voteSources = append(d.voteSources, b.logSrc[perm[j]])
			d.voteValues = append(d.voteValues, v)
			d.factStarts[b.logFact[perm[j]]+1]++
		}
		i = j + 1
	}
	for f := 0; f < numFacts; f++ {
		d.factStarts[f+1] += d.factStarts[f]
	}
	d.factArena = make([]SourceVote, len(d.voteValues))
	for i, s := range d.voteSources {
		d.factArena[i] = SourceVote{Source: int(s), Vote: d.voteValues[i]}
	}
	d.srcStarts = make([]uint32, numSources+1)
	for _, s := range d.voteSources {
		d.srcStarts[s+1]++
	}
	for s := 0; s < numSources; s++ {
		d.srcStarts[s+1] += d.srcStarts[s]
	}
	d.srcArena = make([]FactVote, len(d.voteValues))
	next := append([]uint32(nil), d.srcStarts[:numSources:numSources]...)
	for f := 0; f < numFacts; f++ {
		for i := d.factStarts[f]; i < d.factStarts[f+1]; i++ {
			s := d.voteSources[i]
			d.srcArena[next[s]] = FactVote{Fact: f, Vote: d.voteValues[i]}
			next[s]++
		}
	}
	return d
}
