package truth

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := MotivatingExample()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	assertDatasetsEqual(t, d, got)
}

func assertDatasetsEqual(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.NumSources() != want.NumSources() || got.NumFacts() != want.NumFacts() || got.NumVotes() != want.NumVotes() {
		t.Fatalf("shape mismatch: got (%d,%d,%d), want (%d,%d,%d)",
			got.NumSources(), got.NumFacts(), got.NumVotes(),
			want.NumSources(), want.NumFacts(), want.NumVotes())
	}
	for f := 0; f < want.NumFacts(); f++ {
		if got.FactName(f) != want.FactName(f) {
			t.Fatalf("fact %d name %q, want %q", f, got.FactName(f), want.FactName(f))
		}
		if got.Label(f) != want.Label(f) {
			t.Errorf("fact %d label %v, want %v", f, got.Label(f), want.Label(f))
		}
		for s := 0; s < want.NumSources(); s++ {
			if got.Vote(f, s) != want.Vote(f, s) {
				t.Errorf("vote (%d,%d) = %v, want %v", f, s, got.Vote(f, s), want.Vote(f, s))
			}
		}
	}
	wg, gg := want.Golden(), got.Golden()
	if len(wg) != len(gg) {
		t.Fatalf("golden size %d, want %d", len(gg), len(wg))
	}
	for i := range wg {
		if wg[i] != gg[i] {
			t.Errorf("golden[%d] = %d, want %d", i, gg[i], wg[i])
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	d := MotivatingExample()
	path := filepath.Join(t.TempDir(), "motivating.csv")
	if err := SaveCSV(path, d); err != nil {
		t.Fatalf("SaveCSV: %v", err)
	}
	got, err := LoadCSV(path)
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestCSVGoldenRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.AddSources("a", "b")
	f1 := b.Fact("x")
	f2 := b.Fact("y")
	b.Vote(f1, 0, Affirm)
	b.Vote(f2, 1, Deny)
	b.Label(f1, True)
	b.Label(f2, False)
	b.Golden([]int{f1})
	d := b.Build()

	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !got.HasGolden() {
		t.Fatal("golden flag lost in round trip")
	}
	assertDatasetsEqual(t, d, got)
}

func TestReadCSVWithoutOptionalColumns(t *testing.T) {
	in := "fact,s1,s2\nr1,T,-\nr2,F,T\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if d.NumFacts() != 2 || d.NumSources() != 2 || d.NumVotes() != 3 {
		t.Fatalf("shape (%d,%d,%d)", d.NumFacts(), d.NumSources(), d.NumVotes())
	}
	if d.Label(0) != Unknown {
		t.Error("labels should default to Unknown")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":      "object,s1\nr1,T\n",
		"no sources":      "fact,label\nr1,true\n",
		"bad vote":        "fact,s1\nr1,X\n",
		"bad label":       "fact,s1,label\nr1,T,perhaps\n",
		"short row":       "fact,s1,s2\nr1,T\n",
		"bad golden flag": "fact,s1,label,golden\nr1,T,true,2\n",
		"empty":           "",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadCSV should fail", name)
		}
	}
}

func TestLoadCSVMissingFile(t *testing.T) {
	if _, err := LoadCSV(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("LoadCSV on a missing file should fail")
	}
}
