package truth

import "fmt"

// MergePolicy decides what happens when two datasets disagree on the same
// (fact, source) vote.
type MergePolicy int

const (
	// MergeStrict fails on any conflicting vote.
	MergeStrict MergePolicy = iota
	// MergePreferLater keeps the vote from the later dataset (useful when
	// merging crawl increments in time order: a CLOSED mark supersedes a
	// listing).
	MergePreferLater
	// MergePreferDeny keeps a Deny over an Affirm regardless of order
	// (pessimistic: one CLOSED mark wins).
	MergePreferDeny
)

// Merge unions several datasets into one: sources and facts are matched by
// name, votes are combined under the policy, and labels are merged (a known
// label wins over Unknown; conflicting known labels fail). Explicit golden
// sets are merged by fact name. Datasets are merged left to right.
func Merge(policy MergePolicy, datasets ...*Dataset) (*Dataset, error) {
	if len(datasets) == 0 {
		return NewBuilder().Build(), nil
	}
	b := NewBuilder()
	goldenNames := make(map[string]bool)
	anyGolden := false
	for di, d := range datasets {
		for s := 0; s < d.NumSources(); s++ {
			b.Source(d.SourceName(s))
		}
		for f := 0; f < d.NumFacts(); f++ {
			name := d.FactName(f)
			nf := b.Fact(name)
			for _, sv := range d.VotesOnFact(f) {
				ns := b.Source(d.SourceName(sv.Source))
				switch prev := b.vote(nf, ns); {
				case prev == Absent || prev == sv.Vote:
					b.Vote(nf, ns, sv.Vote)
				case policy == MergeStrict:
					return nil, fmt.Errorf("truth: merge conflict on fact %q source %q (%v vs %v) in dataset %d",
						name, d.SourceName(sv.Source), prev, sv.Vote, di)
				case policy == MergePreferLater:
					b.Vote(nf, ns, sv.Vote)
				case policy == MergePreferDeny:
					if sv.Vote == Deny {
						b.Vote(nf, ns, Deny)
					}
				default:
					return nil, fmt.Errorf("truth: unknown merge policy %d", int(policy))
				}
			}
			if l := d.Label(f); l != Unknown {
				if existing := b.labels[nf]; existing != Unknown && existing != l {
					return nil, fmt.Errorf("truth: conflicting labels for fact %q (%v vs %v)", name, existing, l)
				}
				b.Label(nf, l)
			}
		}
		if d.HasGolden() {
			anyGolden = true
			for _, f := range d.Golden() {
				goldenNames[d.FactName(f)] = true
			}
		}
	}
	if anyGolden {
		var golden []int
		for f, name := range b.factNames {
			if goldenNames[name] {
				golden = append(golden, f)
			}
		}
		b.Golden(golden)
	}
	return b.Build(), nil
}

// vote reports the vote currently recorded in the builder for (f, s).
func (b *Builder) vote(f, s int) Vote {
	if b.votes[f] == nil {
		return Absent
	}
	return b.votes[f][s]
}
