package truth

import "fmt"

// MergePolicy decides what happens when two datasets disagree on the same
// (fact, source) vote.
type MergePolicy int

const (
	// MergeStrict fails on any conflicting vote.
	MergeStrict MergePolicy = iota
	// MergePreferLater keeps the vote from the later dataset (useful when
	// merging crawl increments in time order: a CLOSED mark supersedes a
	// listing).
	MergePreferLater
	// MergePreferDeny keeps a Deny over an Affirm regardless of order
	// (pessimistic: one CLOSED mark wins).
	MergePreferDeny
)

// Merge unions several datasets into one: sources and facts are matched by
// name, votes are combined under the policy, and labels are merged (a known
// label wins over Unknown; conflicting known labels fail). Explicit golden
// sets are merged by fact name. Datasets are merged left to right.
func Merge(policy MergePolicy, datasets ...*Dataset) (*Dataset, error) {
	if len(datasets) == 0 {
		return NewBuilder().Build(), nil
	}
	b := NewBuilder()
	goldenNames := make(map[string]bool)
	anyGolden := false
	// The builder's vote log is append-only, so the current vote per
	// (fact, source) pair is mirrored here for conflict detection.
	current := make(map[uint64]Vote)
	for di, d := range datasets {
		for s := 0; s < d.NumSources(); s++ {
			b.Source(d.SourceName(s))
		}
		for f := 0; f < d.NumFacts(); f++ {
			name := d.FactName(f)
			nf := b.Fact(name)
			for _, sv := range d.VotesOnFact(f) {
				ns := b.Source(d.SourceName(sv.Source))
				key := uint64(nf)<<32 | uint64(uint32(ns))
				switch prev := current[key]; {
				case prev == Absent || prev == sv.Vote:
					b.Vote(nf, ns, sv.Vote)
					current[key] = sv.Vote
				case policy == MergeStrict:
					return nil, fmt.Errorf("truth: merge conflict on fact %q source %q (%v vs %v) in dataset %d",
						name, d.SourceName(sv.Source), prev, sv.Vote, di)
				case policy == MergePreferLater:
					b.Vote(nf, ns, sv.Vote)
					current[key] = sv.Vote
				case policy == MergePreferDeny:
					if sv.Vote == Deny {
						b.Vote(nf, ns, Deny)
						current[key] = Deny
					}
				default:
					return nil, fmt.Errorf("truth: unknown merge policy %d", int(policy))
				}
			}
			if l := d.Label(f); l != Unknown {
				if existing := b.labels[nf]; existing != Unknown && existing != l {
					return nil, fmt.Errorf("truth: conflicting labels for fact %q (%v vs %v)", name, existing, l)
				}
				b.Label(nf, l)
			}
		}
		if d.HasGolden() {
			anyGolden = true
			for _, f := range d.Golden() {
				goldenNames[d.FactName(f)] = true
			}
		}
	}
	if anyGolden {
		var golden []int
		for f := 0; f < b.NumFacts(); f++ {
			if goldenNames[b.facts.Name(uint32(f))] {
				golden = append(golden, f)
			}
		}
		b.Golden(golden)
	}
	return b.Build(), nil
}
