package truth

import (
	"fmt"
	"testing"
)

// TestVoteIngestionAllocFree pins the zero-alloc ingestion contract: once
// Grow has reserved log capacity, Vote must not allocate. BenchmarkBuild sat
// at 15,948 allocs/op for five PRs because the old builder kept a map per
// fact; this ceiling stops that from coming back.
func TestVoteIngestionAllocFree(t *testing.T) {
	const runs, votesPerRun = 100, 64
	b := NewBuilder()
	for s := 0; s < 8; s++ {
		b.Source(fmt.Sprintf("s%d", s))
	}
	for f := 0; f < 32; f++ {
		b.Fact(fmt.Sprintf("f%d", f))
	}
	// AllocsPerRun executes the body runs+1 times (one warm-up).
	b.Grow((runs + 1) * votesPerRun)
	avg := testing.AllocsPerRun(runs, func() {
		for i := 0; i < votesPerRun; i++ {
			v := Affirm
			if i%5 == 0 {
				v = Deny
			}
			b.Vote(i%b.NumFacts(), i%b.NumSources(), v)
		}
	})
	if avg != 0 {
		t.Fatalf("pre-grown Vote ingestion allocates %.1f times per %d votes, want 0", avg, votesPerRun)
	}
}

// TestAppendSignatureAllocFree pins that AppendSignature into a buffer with
// sufficient capacity performs zero allocations — group building reuses one
// buffer across a whole dataset and must stay O(1) in allocations per fact.
func TestAppendSignatureAllocFree(t *testing.T) {
	b := NewBuilder()
	for s := 0; s < 12; s++ {
		b.Source(fmt.Sprintf("s%d", s))
	}
	for f := 0; f < 50; f++ {
		fi := b.Fact(fmt.Sprintf("f%d", f))
		for s := 0; s < 12; s++ {
			if (f+s)%2 == 0 {
				v := Affirm
				if (f*s)%7 == 0 {
					v = Deny
				}
				b.Vote(fi, s, v)
			}
		}
	}
	d := b.Build()
	buf := make([]byte, 0, 1024)
	avg := testing.AllocsPerRun(100, func() {
		for f := 0; f < d.NumFacts(); f++ {
			buf = d.AppendSignature(buf[:0], f)
		}
	})
	if avg != 0 {
		t.Fatalf("AppendSignature with adequate buffer allocates %.1f times per sweep, want 0", avg)
	}
}

// TestBuildAllocCeiling bounds Build's total allocations on a mid-size
// world. The columnar Build is a fixed number of slabs plus the interner
// clones — it must scale with the symbol-table size, never per-vote.
func TestBuildAllocCeiling(t *testing.T) {
	b := NewBuilder()
	for s := 0; s < 10; s++ {
		b.Source(fmt.Sprintf("s%d", s))
	}
	for f := 0; f < 2000; f++ {
		b.Fact(fmt.Sprintf("f%d", f))
	}
	b.Grow(2000 * 4)
	for f := 0; f < 2000; f++ {
		for s := 0; s < 10; s++ {
			if (f+s)%3 == 0 {
				b.Vote(f, s, Affirm)
			}
		}
	}
	// ~6,700 votes; the old map-based Build allocated one map + one sorted
	// slice per fact (>4,000 allocs for this shape). The columnar Build
	// allocates the permutation, the columns, the two arenas, and the two
	// interner clones (names slice + map buckets). 300 leaves headroom for
	// map-bucket growth while still catching any per-vote or per-fact
	// regression.
	avg := testing.AllocsPerRun(5, func() {
		_ = b.Build()
	})
	if avg > 300 {
		t.Fatalf("Build allocates %.0f times for a 2000-fact world, ceiling 300", avg)
	}
}
