package truth

import "fmt"

// Interner is an append-only symbol table mapping names to dense uint32
// IDs. It is the single naming authority of the columnar storage layer:
// datasets, builders, and the streaming layer all hold names once, here,
// and move uint32 IDs everywhere else (posting lists, vote columns,
// checkpoint tables). IDs are assigned in first-intern order and never
// change, which is what makes vote signatures — and therefore fact-group
// ordinals and every downstream floating-point accumulation order — stable
// across re-interning the same names in the same order.
//
// Names are arbitrary byte strings: empty names and non-UTF-8 names intern
// like any other (FuzzIntern exercises both). The zero value is ready to
// use.
//
// Truncate is the one concession to the append-only contract: the stream's
// atomic-batch rollback discards the IDs a rejected batch interned, which
// is sound only because nothing else has seen them yet (the batch that
// created them is being thrown away whole).
type Interner struct {
	names []string
	idx   map[string]uint32
}

// NewInterner returns an empty symbol table.
func NewInterner() *Interner { return &Interner{} }

// Intern returns the ID of name, assigning the next dense ID on first
// sight.
func (t *Interner) Intern(name string) uint32 {
	if id, ok := t.idx[name]; ok {
		return id
	}
	if t.idx == nil {
		t.idx = make(map[string]uint32)
	}
	id := uint32(len(t.names))
	t.names = append(t.names, name)
	t.idx[name] = id
	return id
}

// Lookup resolves a name without interning it.
func (t *Interner) Lookup(name string) (uint32, bool) {
	id, ok := t.idx[name]
	return id, ok
}

// Name resolves an ID back to its name. IDs come from Intern, so an
// out-of-range ID is a programming error and panics like a slice index.
func (t *Interner) Name(id uint32) string { return t.names[id] }

// Len returns the number of interned names.
func (t *Interner) Len() int { return len(t.names) }

// Names returns a copy of all names in ID order.
func (t *Interner) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Clone returns an independent copy of the table.
func (t *Interner) Clone() *Interner {
	c := &Interner{names: append([]string(nil), t.names...)}
	if len(c.names) > 0 {
		c.idx = make(map[string]uint32, len(c.names))
		for i, n := range c.names {
			c.idx[n] = uint32(i)
		}
	}
	return c
}

// Truncate discards every ID at or above n, restoring the table to a
// previous Len. It exists for atomic-batch rollback (see the type comment);
// growing the table through Truncate is an error.
func (t *Interner) Truncate(n int) {
	if n < 0 || n > len(t.names) {
		panic(fmt.Sprintf("truth: truncating interner of %d names to %d", len(t.names), n))
	}
	for _, name := range t.names[n:] {
		delete(t.idx, name)
	}
	t.names = t.names[:n]
}
