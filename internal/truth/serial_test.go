package truth

import (
	"encoding/json"
	"testing"
)

func TestVoteTextRoundTrip(t *testing.T) {
	for _, v := range []Vote{Absent, Affirm, Deny} {
		text, err := v.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", v, err)
		}
		var back Vote
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != v {
			t.Errorf("round trip %v -> %q -> %v", v, text, back)
		}
	}
	if _, err := Vote(9).MarshalText(); err == nil {
		t.Error("marshaling an invalid vote must fail")
	}
	var v Vote
	if err := v.UnmarshalText([]byte("maybe")); err == nil {
		t.Error("unmarshaling garbage must fail")
	}
}

func TestLabelTextRoundTrip(t *testing.T) {
	for _, l := range []Label{Unknown, True, False} {
		text, err := l.MarshalText()
		if err != nil {
			t.Fatalf("MarshalText(%v): %v", l, err)
		}
		var back Label
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("UnmarshalText(%q): %v", text, err)
		}
		if back != l {
			t.Errorf("round trip %v -> %q -> %v", l, text, back)
		}
	}
	if _, err := Label(9).MarshalText(); err == nil {
		t.Error("marshaling an invalid label must fail")
	}
	var l Label
	if err := l.UnmarshalText([]byte("perhaps")); err == nil {
		t.Error("unmarshaling garbage must fail")
	}
}

// TestLabelJSONHook: encoding/json must pick up the text hooks, so a Label
// inside any struct serializes as the paper's word, not an int8 code.
func TestLabelJSONHook(t *testing.T) {
	type wrap struct {
		L Label `json:"l"`
		V Vote  `json:"v"`
	}
	data, err := json.Marshal(wrap{L: False, V: Deny})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"l":"false","v":"F"}` {
		t.Fatalf("unexpected encoding %s", data)
	}
	var back wrap
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.L != False || back.V != Deny {
		t.Fatalf("round trip got %+v", back)
	}
	if err := json.Unmarshal([]byte(`{"l":"sideways"}`), &back); err == nil {
		t.Error("invalid label text must fail to unmarshal")
	}
}
