package truth

// MotivatingExample builds the paper's Table 1: five sources s1..s5 and
// twelve restaurant facts r1..r12 with the published votes and ground truth.
// Every number in Section 2 of the paper (TwoEstimate's trust scores, the
// three-round IncEstimate walk-through, Table 2's precision/recall/accuracy)
// is derived from this dataset, so the test suites use it as an executable
// specification.
func MotivatingExample() *Dataset {
	b := NewBuilder()
	b.AddSources("s1", "s2", "s3", "s4", "s5")

	type row struct {
		name  string
		votes [5]Vote // s1..s5
		label Label
	}
	rows := []row{
		{"r1", [5]Vote{Absent, Affirm, Absent, Affirm, Absent}, True},
		{"r2", [5]Vote{Affirm, Affirm, Absent, Affirm, Affirm}, True},
		{"r3", [5]Vote{Affirm, Absent, Affirm, Absent, Affirm}, True},
		{"r4", [5]Vote{Absent, Absent, Absent, Affirm, Affirm}, False},
		{"r5", [5]Vote{Affirm, Absent, Absent, Affirm, Absent}, False},
		{"r6", [5]Vote{Absent, Absent, Deny, Affirm, Absent}, False},
		{"r7", [5]Vote{Absent, Affirm, Absent, Affirm, Affirm}, True},
		{"r8", [5]Vote{Absent, Affirm, Absent, Affirm, Affirm}, True},
		{"r9", [5]Vote{Absent, Absent, Affirm, Absent, Affirm}, True},
		{"r10", [5]Vote{Absent, Absent, Absent, Affirm, Affirm}, False},
		{"r11", [5]Vote{Absent, Absent, Affirm, Affirm, Affirm}, True},
		{"r12", [5]Vote{Absent, Deny, Deny, Affirm, Absent}, False},
	}
	for _, r := range rows {
		f := b.Fact(r.name)
		for s, v := range r.votes {
			if v != Absent {
				b.Vote(f, s, v)
			}
		}
		b.Label(f, r.label)
	}
	return b.Build()
}

// MotivatingTrust returns the global trust scores of the five sources in the
// motivating example: the fraction of each source's votes that agree with the
// ground truth. From the printed Table 1 this is {2/3, 1, 1, 0.5, 0.75}.
//
// The paper's prose quotes {1, 0.8, 1, 0.5, 0.625}, which is inconsistent
// with its own Table 1 under any uniform accuracy definition (only s3 and s4
// agree); every other number in Section 2 — TwoEstimate's trust vector, the
// three-round IncEstimate walk-through, and all of Table 2 — reproduces
// exactly from Table 1 with the standard definition used here, so we treat
// the prose vector as a typo. See EXPERIMENTS.md.
func MotivatingTrust() []float64 {
	d := MotivatingExample()
	trust := make([]float64, d.NumSources())
	for s := 0; s < d.NumSources(); s++ {
		correct, total := 0, 0
		for _, fv := range d.VotesBySource(s) {
			total++
			want := d.Label(fv.Fact)
			if (fv.Vote == Affirm && want == True) || (fv.Vote == Deny && want == False) {
				correct++
			}
		}
		if total > 0 {
			trust[s] = float64(correct) / float64(total)
		}
	}
	return trust
}
