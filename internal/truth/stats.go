package truth

// Stats summarizes a dataset the way Table 3 of the paper does: per-source
// coverage, pairwise overlap, and per-source accuracy against the available
// ground truth.
type Stats struct {
	// Facts and Votes are |F| and the total vote count.
	Facts, Votes int
	// Coverage[s] is the fraction of all facts source s voted on.
	Coverage []float64
	// Overlap[s][t] is the Jaccard overlap between the fact sets of s and
	// t: |votes_s ∩ votes_t| / |votes_s ∪ votes_t|. Overlap[s][s] == 1.
	Overlap [][]float64
	// Accuracy[s] is the fraction of source s's votes (restricted to facts
	// with known labels, further restricted to the golden set when one is
	// declared) that agree with the ground truth. NaN-free: sources with no
	// labeled votes get 0.
	Accuracy []float64
	// LabeledVotes[s] is the number of votes that contributed to
	// Accuracy[s].
	LabeledVotes []int
	// DenyCount[s] is the number of F votes cast by source s over the
	// whole dataset.
	DenyCount []int
	// FactsWithDeny is the number of facts receiving at least one F vote.
	FactsWithDeny int
}

// ComputeStats derives Table 3-style statistics from the dataset.
func ComputeStats(d *Dataset) *Stats {
	nS, nF := d.NumSources(), d.NumFacts()
	st := &Stats{
		Facts:        nF,
		Votes:        d.NumVotes(),
		Coverage:     make([]float64, nS),
		Overlap:      make([][]float64, nS),
		Accuracy:     make([]float64, nS),
		LabeledVotes: make([]int, nS),
		DenyCount:    make([]int, nS),
	}
	for s := range st.Overlap {
		st.Overlap[s] = make([]float64, nS)
	}
	counts := make([]int, nS)
	inter := make([][]int, nS)
	for s := range inter {
		inter[s] = make([]int, nS)
	}
	for f := 0; f < nF; f++ {
		list := d.VotesOnFact(f)
		if len(list) > 0 {
			hasDeny := false
			for _, sv := range list {
				if sv.Vote == Deny {
					hasDeny = true
					break
				}
			}
			if hasDeny {
				st.FactsWithDeny++
			}
		}
		for i, a := range list {
			counts[a.Source]++
			if a.Vote == Deny {
				st.DenyCount[a.Source]++
			}
			for _, b := range list[i+1:] {
				inter[a.Source][b.Source]++
				inter[b.Source][a.Source]++
			}
		}
	}
	for s := 0; s < nS; s++ {
		if nF > 0 {
			st.Coverage[s] = float64(counts[s]) / float64(nF)
		}
		st.Overlap[s][s] = 1
		for t := s + 1; t < nS; t++ {
			union := counts[s] + counts[t] - inter[s][t]
			if union > 0 {
				ov := float64(inter[s][t]) / float64(union)
				st.Overlap[s][t] = ov
				st.Overlap[t][s] = ov
			}
		}
	}
	eval := d.Golden()
	inEval := make([]bool, nF)
	for _, f := range eval {
		inEval[f] = true
	}
	correct := make([]int, nS)
	for s := 0; s < nS; s++ {
		for _, fv := range d.VotesBySource(s) {
			l := d.Label(fv.Fact)
			if l == Unknown || !inEval[fv.Fact] {
				continue
			}
			st.LabeledVotes[s]++
			if (fv.Vote == Affirm && l == True) || (fv.Vote == Deny && l == False) {
				correct[s]++
			}
		}
		if st.LabeledVotes[s] > 0 {
			st.Accuracy[s] = float64(correct[s]) / float64(st.LabeledVotes[s])
		}
	}
	return st
}

// TrueAccuracy computes each source's accuracy over every labeled fact
// (ignoring any golden-set restriction). It is the reference trust vector
// t(s) used in the MSE metric (Eq. 10).
func TrueAccuracy(d *Dataset) []float64 {
	nS := d.NumSources()
	acc := make([]float64, nS)
	for s := 0; s < nS; s++ {
		correct, total := 0, 0
		for _, fv := range d.VotesBySource(s) {
			l := d.Label(fv.Fact)
			if l == Unknown {
				continue
			}
			total++
			if (fv.Vote == Affirm && l == True) || (fv.Vote == Deny && l == False) {
				correct++
			}
		}
		if total > 0 {
			acc[s] = float64(correct) / float64(total)
		}
	}
	return acc
}

// Restrict returns a new dataset containing only the given facts (in the
// given order), keeping all sources. Labels and vote structure are
// preserved; the golden set of the restriction is every labeled fact.
func Restrict(d *Dataset, facts []int) *Dataset {
	b := NewBuilder()
	b.AddSources(d.SourceNames()...)
	for _, f := range facts {
		nf := b.Fact(d.FactName(f))
		for _, sv := range d.VotesOnFact(f) {
			b.Vote(nf, sv.Source, sv.Vote)
		}
		b.Label(nf, d.Label(f))
	}
	return b.Build()
}
