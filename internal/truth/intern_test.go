package truth

import "testing"

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	names := []string{"a", "", "b", "a", "\xff\xfe", "b", "weird name", ""}
	wantIDs := []uint32{0, 1, 2, 0, 3, 2, 4, 1}
	for i, n := range names {
		if got := in.Intern(n); got != wantIDs[i] {
			t.Fatalf("Intern(%q) = %d, want %d", n, got, wantIDs[i])
		}
	}
	if in.Len() != 5 {
		t.Fatalf("Len = %d, want 5", in.Len())
	}
	for _, n := range names {
		id, ok := in.Lookup(n)
		if !ok {
			t.Fatalf("Lookup(%q) missing", n)
		}
		if in.Name(id) != n {
			t.Fatalf("Name(%d) = %q, want %q", id, in.Name(id), n)
		}
	}
	if _, ok := in.Lookup("absent"); ok {
		t.Fatal("Lookup of never-interned name succeeded")
	}
}

func TestInternerCloneIndependent(t *testing.T) {
	in := NewInterner()
	in.Intern("x")
	in.Intern("y")
	c := in.Clone()
	in.Intern("z")
	if c.Len() != 2 {
		t.Fatalf("clone Len = %d after original grew, want 2", c.Len())
	}
	c.Intern("w")
	if _, ok := in.Lookup("w"); ok {
		t.Fatal("interning into clone leaked into original")
	}
	if id, ok := c.Lookup("x"); !ok || id != 0 {
		t.Fatalf("clone Lookup(x) = %d,%v, want 0,true", id, ok)
	}
}

func TestInternerTruncate(t *testing.T) {
	in := NewInterner()
	in.Intern("keep")
	in.Intern("drop1")
	in.Intern("drop2")
	in.Truncate(1)
	if in.Len() != 1 {
		t.Fatalf("Len = %d after Truncate(1), want 1", in.Len())
	}
	if _, ok := in.Lookup("drop1"); ok {
		t.Fatal("truncated name still resolves")
	}
	// Re-interning a truncated name must assign a fresh dense ID.
	if got := in.Intern("drop2"); got != 1 {
		t.Fatalf("re-intern after truncate = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Truncate beyond Len did not panic")
		}
	}()
	in.Truncate(5)
}

// FuzzIntern round-trips intern → resolve → re-intern over arbitrary byte
// strings (duplicates, empty, and non-UTF-8 names included) and checks that
// replaying Names() into a fresh table reproduces identical IDs — the
// property that makes checkpoint restore byte-identical.
func FuzzIntern(f *testing.F) {
	f.Add("a", "b", "a")
	f.Add("", "", "x")
	f.Add("\xff\xfe\xfd", "a\x00b", "\xff\xfe\xfd")
	f.Add("dup", "dup", "dup")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		in := NewInterner()
		names := []string{a, b, c, a, b}
		ids := make([]uint32, len(names))
		for i, n := range names {
			ids[i] = in.Intern(n)
		}
		for i, n := range names {
			// Resolve and re-intern: both must reproduce the assigned ID.
			if in.Name(ids[i]) != n {
				t.Fatalf("Name(%d) = %q, want %q", ids[i], in.Name(ids[i]), n)
			}
			if again := in.Intern(n); again != ids[i] {
				t.Fatalf("re-Intern(%q) = %d, want %d", n, again, ids[i])
			}
			if id, ok := in.Lookup(n); !ok || id != ids[i] {
				t.Fatalf("Lookup(%q) = %d,%v, want %d,true", n, id, ok, ids[i])
			}
		}
		if in.Len() > len(names) {
			t.Fatalf("Len = %d exceeds %d interned names", in.Len(), len(names))
		}
		// Replaying the table in ID order onto a fresh interner must
		// reproduce every ID (checkpoint restore depends on this).
		fresh := NewInterner()
		for i, n := range in.Names() {
			if got := fresh.Intern(n); got != uint32(i) {
				t.Fatalf("replaying name %d (%q) interned as %d", i, n, got)
			}
		}
		if fresh.Len() != in.Len() {
			t.Fatalf("replayed table Len = %d, want %d", fresh.Len(), in.Len())
		}
	})
}
