package truth

import "fmt"

// Text serialization hooks. Vote and Label implement
// encoding.TextMarshaler/TextUnmarshaler so any encoder that honours the
// standard interfaces (encoding/json in particular) round-trips them in the
// paper's notation ("T"/"F"/"-", "true"/"false"/"unknown") instead of raw
// int8 codes. The core checkpoint format (internal/core/checkpoint.go)
// relies on these hooks for its decided-fact log.

// MarshalText implements encoding.TextMarshaler using the paper's notation.
// Marshaling an invalid vote is an error, never a silent mis-encode.
func (v Vote) MarshalText() ([]byte, error) {
	if !v.Valid() {
		return nil, fmt.Errorf("truth: cannot marshal invalid vote %d", int8(v))
	}
	return []byte(v.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseVote.
func (v *Vote) UnmarshalText(text []byte) error {
	parsed, err := ParseVote(string(text))
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}

// MarshalText implements encoding.TextMarshaler ("true"/"false"/"unknown").
// Marshaling an invalid label is an error, never a silent mis-encode.
func (l Label) MarshalText() ([]byte, error) {
	if !l.Valid() {
		return nil, fmt.Errorf("truth: cannot marshal invalid label %d", int8(l))
	}
	return []byte(l.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler via ParseLabel.
func (l *Label) UnmarshalText(text []byte) error {
	parsed, err := ParseLabel(string(text))
	if err != nil {
		return err
	}
	*l = parsed
	return nil
}
