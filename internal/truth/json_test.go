package truth

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	d := MotivatingExample()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestJSONFileRoundTrip(t *testing.T) {
	d := MotivatingExample()
	path := filepath.Join(t.TempDir(), "d.json")
	if err := SaveJSON(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	assertDatasetsEqual(t, d, got)
}

func TestJSONGoldenRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.AddSources("a", "b")
	f1 := b.Fact("x")
	f2 := b.Fact("y")
	b.Vote(f1, 0, Affirm)
	b.Vote(f2, 1, Deny)
	b.Label(f1, True)
	b.Label(f2, False)
	b.Golden([]int{f2})
	d := b.Build()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.HasGolden() {
		t.Fatal("golden set lost")
	}
	assertDatasetsEqual(t, d, got)
}

func TestReadJSONInternsUnlistedSources(t *testing.T) {
	in := `{"sources": ["a"], "facts": [{"name": "x", "votes": {"a": "T", "mystery": "F"}}]}`
	d, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSources() != 2 {
		t.Fatalf("sources = %d, want 2 (mystery interned)", d.NumSources())
	}
	if d.Vote(0, d.SourceIndex("mystery")) != Deny {
		t.Error("mystery's vote lost")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"not json":      "nope",
		"unknown field": `{"sources": [], "facts": [], "extra": 1}`,
		"unnamed fact":  `{"facts": [{"votes": {"a": "T"}}]}`,
		"bad vote":      `{"facts": [{"name": "x", "votes": {"a": "Q"}}]}`,
		"bad label":     `{"facts": [{"name": "x", "votes": {"a": "T"}, "label": "perhaps"}]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadJSON should fail", name)
		}
	}
}

func TestWriteResultJSON(t *testing.T) {
	d := MotivatingExample()
	r := NewResult("demo", d)
	r.FactProb[0] = 0.9
	r.Finalize()
	r.Trust = make([]float64, d.NumSources())
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, d, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"method": "demo"`, `"name": "r1"`, `"prediction": "true"`, `"trust"`} {
		if !strings.Contains(out, want) {
			t.Errorf("result JSON missing %q", want)
		}
	}
	// Mis-shaped results are rejected.
	r.FactProb = r.FactProb[:2]
	if err := WriteResultJSON(&buf, d, r); err == nil {
		t.Error("mis-shaped result must be rejected")
	}
}
