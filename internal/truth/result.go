package truth

import "fmt"

// Result is the output of a corroboration method: a probability and derived
// label per fact, and a trustworthiness score per source. Methods that do
// not estimate source trust (e.g. Voting) leave Trust nil.
type Result struct {
	// Method is the name of the algorithm that produced the result.
	Method string

	// FactProb[f] is the estimated probability that fact f is true.
	FactProb []float64

	// Predictions[f] is FactProb thresholded by Eq. 2. Facts with no votes
	// are predicted by the method's convention (usually true for prob 0.5
	// with the >= threshold).
	Predictions []Label

	// Trust[s] is the estimated trustworthiness of source s, or nil if the
	// method does not compute one.
	Trust []float64

	// Iterations is the number of fixpoint iterations or time points the
	// method used, when meaningful.
	Iterations int
}

// NewResult allocates a Result sized for the dataset with all probabilities
// at 0.5 and all predictions derived from them.
func NewResult(method string, d *Dataset) *Result {
	r := &Result{
		Method:      method,
		FactProb:    make([]float64, d.NumFacts()),
		Predictions: make([]Label, d.NumFacts()),
	}
	for f := range r.FactProb {
		r.FactProb[f] = 0.5
		r.Predictions[f] = True
	}
	return r
}

// Finalize recomputes Predictions from FactProb using the standard
// threshold. Call it after filling FactProb.
func (r *Result) Finalize() {
	if len(r.Predictions) != len(r.FactProb) {
		r.Predictions = make([]Label, len(r.FactProb))
	}
	for f, p := range r.FactProb {
		r.Predictions[f] = LabelOf(p, Threshold)
	}
}

// Check verifies that the result is shaped for dataset d and that all
// probabilities are finite and within [0, 1].
func (r *Result) Check(d *Dataset) error {
	if len(r.FactProb) != d.NumFacts() {
		return fmt.Errorf("truth: result has %d probabilities for %d facts", len(r.FactProb), d.NumFacts())
	}
	if len(r.Predictions) != d.NumFacts() {
		return fmt.Errorf("truth: result has %d predictions for %d facts", len(r.Predictions), d.NumFacts())
	}
	for f, p := range r.FactProb {
		if p < 0 || p > 1 || p != p {
			return fmt.Errorf("truth: fact %d probability %v out of range", f, p)
		}
	}
	if r.Trust != nil {
		if len(r.Trust) != d.NumSources() {
			return fmt.Errorf("truth: result has %d trust scores for %d sources", len(r.Trust), d.NumSources())
		}
		for s, t := range r.Trust {
			if t < 0 || t > 1 || t != t {
				return fmt.Errorf("truth: source %d trust %v out of range", s, t)
			}
		}
	}
	return nil
}

// Method is a corroboration algorithm: given a dataset of votes it estimates
// which facts are true and (usually) how trustworthy each source is.
type Method interface {
	// Name returns the method's display name as used in the paper's tables
	// (e.g. "TwoEstimate", "IncEstHeu").
	Name() string
	// Run corroborates the dataset. Implementations must not retain or
	// mutate the dataset.
	Run(d *Dataset) (*Result, error)
}
