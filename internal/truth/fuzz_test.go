package truth

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets run their seed corpus under plain `go test`; use
// `go test -fuzz FuzzReadCSV ./internal/truth` for open-ended fuzzing.

func FuzzParseVote(f *testing.F) {
	for _, seed := range []string{"T", "F", "-", "", "true", "x", "  t  ", "０"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseVote(s)
		if err == nil && !v.Valid() {
			t.Fatalf("ParseVote(%q) returned invalid vote %d without error", s, int8(v))
		}
	})
}

func FuzzParseLabel(f *testing.F) {
	for _, seed := range []string{"true", "false", "unknown", "", "T", "maybe"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ParseLabel(s)
		if err == nil && !l.Valid() {
			t.Fatalf("ParseLabel(%q) returned invalid label %d without error", s, int8(l))
		}
	})
}

func FuzzReadCSV(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, MotivatingExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("fact,s1\nr1,T\n")
	f.Add("fact,s1,label,golden\nr1,F,false,1\n")
	f.Add("")
	f.Add("fact,s1\nr1")
	f.Add("\x00\x01\x02")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return // malformed input may fail, but must not panic
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ReadCSV accepted input producing an invalid dataset: %v", verr)
		}
		// Round trip: anything accepted must survive re-serialization.
		var out bytes.Buffer
		if werr := WriteCSV(&out, d); werr != nil {
			t.Fatalf("WriteCSV on accepted dataset: %v", werr)
		}
		again, rerr := ReadCSV(&out)
		if rerr != nil {
			t.Fatalf("round trip failed to parse: %v", rerr)
		}
		if again.NumFacts() != d.NumFacts() || again.NumVotes() != d.NumVotes() {
			t.Fatalf("round trip changed shape: (%d,%d) vs (%d,%d)",
				again.NumFacts(), again.NumVotes(), d.NumFacts(), d.NumVotes())
		}
	})
}

func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, MotivatingExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"sources": [], "facts": []}`)
	f.Add(`{"facts": [{"name": "x", "votes": {"a": "T"}}]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ReadJSON(strings.NewReader(s))
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("ReadJSON accepted input producing an invalid dataset: %v", verr)
		}
	})
}
