package truth

import (
	"strings"
	"testing"
)

func TestVoteString(t *testing.T) {
	cases := []struct {
		v    Vote
		want string
	}{
		{Affirm, "T"},
		{Deny, "F"},
		{Absent, "-"},
		{Vote(9), "Vote(9)"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("Vote(%d).String() = %q, want %q", int8(c.v), got, c.want)
		}
	}
}

func TestVoteValid(t *testing.T) {
	for _, v := range []Vote{Absent, Affirm, Deny} {
		if !v.Valid() {
			t.Errorf("%v should be valid", v)
		}
	}
	if Vote(3).Valid() {
		t.Error("Vote(3) should be invalid")
	}
	if Vote(-1).Valid() {
		t.Error("Vote(-1) should be invalid")
	}
}

func TestParseVote(t *testing.T) {
	cases := []struct {
		in   string
		want Vote
	}{
		{"T", Affirm}, {"t", Affirm}, {"true", Affirm}, {"1", Affirm}, {" T ", Affirm},
		{"F", Deny}, {"false", Deny}, {"0", Deny},
		{"-", Absent}, {"", Absent}, {"?", Absent},
	}
	for _, c := range cases {
		got, err := ParseVote(c.in)
		if err != nil {
			t.Errorf("ParseVote(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseVote(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseVote("banana"); err == nil {
		t.Error("ParseVote(banana) should fail")
	}
}

func TestParseLabel(t *testing.T) {
	cases := []struct {
		in   string
		want Label
	}{
		{"true", True}, {"TRUE", True}, {"1", True},
		{"false", False}, {"F", False},
		{"unknown", Unknown}, {"", Unknown}, {"?", Unknown},
	}
	for _, c := range cases {
		got, err := ParseLabel(c.in)
		if err != nil {
			t.Errorf("ParseLabel(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseLabel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := ParseLabel("maybe"); err == nil {
		t.Error("ParseLabel(maybe) should fail")
	}
}

func TestLabelOf(t *testing.T) {
	if LabelOf(0.5, Threshold) != True {
		t.Error("probability exactly at threshold must be True (Eq. 2 uses >=)")
	}
	if LabelOf(0.4999, Threshold) != False {
		t.Error("probability below threshold must be False")
	}
	if LabelOf(1, Threshold) != True || LabelOf(0, Threshold) != False {
		t.Error("extremes misclassified")
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	s1 := b.Source("alpha")
	s2 := b.Source("beta")
	if s1 == s2 {
		t.Fatal("distinct sources must have distinct indices")
	}
	if again := b.Source("alpha"); again != s1 {
		t.Errorf("re-interning alpha gave %d, want %d", again, s1)
	}
	f1 := b.Fact("x")
	b.Vote(f1, s2, Affirm)
	b.Vote(f1, s1, Deny)
	b.Label(f1, False)
	d := b.Build()

	if d.NumSources() != 2 || d.NumFacts() != 1 || d.NumVotes() != 2 {
		t.Fatalf("got %d sources, %d facts, %d votes", d.NumSources(), d.NumFacts(), d.NumVotes())
	}
	if d.Vote(f1, s1) != Deny || d.Vote(f1, s2) != Affirm {
		t.Error("votes not stored correctly")
	}
	if d.Label(f1) != False {
		t.Error("label not stored")
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderOverwriteAndRemove(t *testing.T) {
	b := NewBuilder()
	f := b.Fact("r")
	s := b.Source("s")
	b.Vote(f, s, Affirm)
	b.Vote(f, s, Deny) // overwrite
	d := b.Build()
	if d.Vote(f, s) != Deny {
		t.Error("later vote should overwrite earlier one")
	}
	if d.NumVotes() != 1 {
		t.Errorf("NumVotes = %d, want 1", d.NumVotes())
	}
	b.Vote(f, s, Absent) // remove
	d = b.Build()
	if d.Vote(f, s) != Absent || d.NumVotes() != 0 {
		t.Error("Absent should remove the vote")
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder()
	b.Fact("r")
	b.Source("s")
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("fact out of range", func() { b.Vote(5, 0, Affirm) })
	mustPanic("source out of range", func() { b.Vote(0, 5, Affirm) })
	mustPanic("invalid vote", func() { b.Vote(0, 0, Vote(7)) })
	mustPanic("invalid label", func() { b.Label(0, Label(7)) })
}

func TestBuildIsSnapshot(t *testing.T) {
	b := NewBuilder()
	f := b.Fact("r1")
	s := b.Source("s1")
	b.Vote(f, s, Affirm)
	d := b.Build()
	b.Fact("r2")
	b.Vote(f, s, Deny)
	if d.NumFacts() != 1 {
		t.Error("dataset grew after Build")
	}
	if d.Vote(f, s) != Affirm {
		t.Error("dataset vote changed after Build")
	}
}

func TestPostingListsOrdered(t *testing.T) {
	b := NewBuilder()
	// Intern in shuffled order.
	for _, n := range []string{"s3", "s1", "s2"} {
		b.Source(n)
	}
	f := b.Fact("r")
	b.Vote(f, b.Source("s2"), Affirm)
	b.Vote(f, b.Source("s1"), Deny)
	b.Vote(f, b.Source("s3"), Affirm)
	d := b.Build()
	list := d.VotesOnFact(f)
	for i := 1; i < len(list); i++ {
		if list[i-1].Source >= list[i].Source {
			t.Fatalf("fact posting list not ordered: %v", list)
		}
	}
	if err := d.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSignatureGroupsEqualVotes(t *testing.T) {
	d := MotivatingExample()
	// r7 and r8 have identical votes (s2, s4, s5 = T); r4 and r10 too.
	if d.Signature(d.FactIndex("r7")) != d.Signature(d.FactIndex("r8")) {
		t.Error("r7 and r8 must share a signature")
	}
	if d.Signature(d.FactIndex("r4")) != d.Signature(d.FactIndex("r10")) {
		t.Error("r4 and r10 must share a signature")
	}
	if d.Signature(d.FactIndex("r6")) == d.Signature(d.FactIndex("r12")) {
		t.Error("r6 and r12 must not share a signature")
	}
	if !strings.Contains(d.Signature(d.FactIndex("r12")), "F") {
		t.Error("r12's signature must record its F votes")
	}
}

func TestOnlyAffirmative(t *testing.T) {
	d := MotivatingExample()
	if !d.OnlyAffirmative(d.FactIndex("r1")) {
		t.Error("r1 has T votes only")
	}
	if d.OnlyAffirmative(d.FactIndex("r6")) {
		t.Error("r6 has an F vote")
	}
	// 10 of 12 facts are affirmative-only.
	if got := d.AffirmativeShare(); got < 0.83 || got > 0.84 {
		t.Errorf("AffirmativeShare = %v, want 10/12", got)
	}
}

func TestMotivatingExampleMatchesTable1(t *testing.T) {
	d := MotivatingExample()
	if d.NumSources() != 5 || d.NumFacts() != 12 {
		t.Fatalf("got %d sources, %d facts", d.NumSources(), d.NumFacts())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Spot-check votes straight from Table 1.
	checks := []struct {
		fact, source string
		want         Vote
	}{
		{"r1", "s2", Affirm}, {"r1", "s1", Absent},
		{"r6", "s3", Deny}, {"r6", "s4", Affirm},
		{"r12", "s2", Deny}, {"r12", "s3", Deny}, {"r12", "s4", Affirm}, {"r12", "s5", Absent},
		{"r9", "s3", Affirm}, {"r9", "s5", Affirm}, {"r9", "s4", Absent},
	}
	for _, c := range checks {
		if got := d.Vote(d.FactIndex(c.fact), d.SourceIndex(c.source)); got != c.want {
			t.Errorf("Vote(%s, %s) = %v, want %v", c.fact, c.source, got, c.want)
		}
	}
	// Ground truth column: 7 true, 5 false.
	nTrue := 0
	for f := 0; f < d.NumFacts(); f++ {
		if d.Label(f) == True {
			nTrue++
		}
	}
	if nTrue != 7 {
		t.Errorf("got %d true facts, want 7", nTrue)
	}
}

func TestMotivatingTrustMatchesPaper(t *testing.T) {
	// Derived from the printed Table 1; the paper's prose vector
	// {1, 0.8, 1, 0.5, 0.625} contradicts its own table (see the
	// MotivatingTrust doc comment), so we assert the table-derived values.
	want := []float64{2.0 / 3, 1, 1, 0.5, 0.75}
	got := MotivatingTrust()
	if len(got) != len(want) {
		t.Fatalf("got %d trust scores", len(got))
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("trust[s%d] = %v, want %v", i+1, got[i], want[i])
		}
	}
}

func TestResultFinalizeAndCheck(t *testing.T) {
	d := MotivatingExample()
	r := NewResult("test", d)
	r.FactProb[0] = 0.9
	r.FactProb[1] = 0.1
	r.Finalize()
	if r.Predictions[0] != True || r.Predictions[1] != False {
		t.Error("Finalize mis-thresholds")
	}
	if err := r.Check(d); err != nil {
		t.Errorf("Check: %v", err)
	}
	r.FactProb[2] = 1.5
	if err := r.Check(d); err == nil {
		t.Error("Check should reject out-of-range probability")
	}
	r.FactProb[2] = 0.5
	r.Trust = []float64{0.1}
	if err := r.Check(d); err == nil {
		t.Error("Check should reject mis-sized trust vector")
	}
}

func TestGoldenDefaultsToLabeled(t *testing.T) {
	b := NewBuilder()
	b.Source("s")
	f1 := b.Fact("a")
	f2 := b.Fact("b")
	b.Fact("c") // unlabeled
	b.Label(f1, True)
	b.Label(f2, False)
	d := b.Build()
	if d.HasGolden() {
		t.Error("no explicit golden set was declared")
	}
	g := d.Golden()
	if len(g) != 2 || g[0] != f1 || g[1] != f2 {
		t.Errorf("Golden() = %v, want labeled facts", g)
	}
}

func TestExplicitGolden(t *testing.T) {
	b := NewBuilder()
	b.Source("s")
	f1 := b.Fact("a")
	f2 := b.Fact("b")
	b.Label(f1, True)
	b.Label(f2, False)
	b.Golden([]int{f2})
	d := b.Build()
	if !d.HasGolden() {
		t.Fatal("HasGolden should be true")
	}
	g := d.Golden()
	if len(g) != 1 || g[0] != f2 {
		t.Errorf("Golden() = %v, want [%d]", g, f2)
	}
}

func TestRestrict(t *testing.T) {
	d := MotivatingExample()
	sub := Restrict(d, []int{d.FactIndex("r12"), d.FactIndex("r9")})
	if sub.NumFacts() != 2 {
		t.Fatalf("NumFacts = %d", sub.NumFacts())
	}
	if sub.FactName(0) != "r12" || sub.FactName(1) != "r9" {
		t.Error("fact order must follow the request")
	}
	if sub.Vote(0, sub.SourceIndex("s4")) != Affirm {
		t.Error("r12 vote from s4 lost")
	}
	if sub.Label(0) != False || sub.Label(1) != True {
		t.Error("labels lost in restriction")
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}
