package truth

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComputeStatsMotivating(t *testing.T) {
	d := MotivatingExample()
	st := ComputeStats(d)
	if st.Facts != 12 || st.Votes != d.NumVotes() {
		t.Fatalf("Facts=%d Votes=%d", st.Facts, st.Votes)
	}
	// s4 votes on 10 of 12 facts.
	if got := st.Coverage[3]; math.Abs(got-10.0/12) > 1e-12 {
		t.Errorf("coverage(s4) = %v, want 10/12", got)
	}
	// s1 votes on r2, r3, r5 -> 3/12.
	if got := st.Coverage[0]; math.Abs(got-0.25) > 1e-12 {
		t.Errorf("coverage(s1) = %v, want 0.25", got)
	}
	// Accuracy equals MotivatingTrust because every fact is labeled.
	want := MotivatingTrust()
	for s := range want {
		if math.Abs(st.Accuracy[s]-want[s]) > 1e-12 {
			t.Errorf("accuracy[s%d] = %v, want %v", s+1, st.Accuracy[s], want[s])
		}
	}
	// r6 and r12 carry F votes.
	if st.FactsWithDeny != 2 {
		t.Errorf("FactsWithDeny = %d, want 2", st.FactsWithDeny)
	}
	// s3 casts F on r6 and r12; s2 on r12.
	if st.DenyCount[2] != 2 || st.DenyCount[1] != 1 {
		t.Errorf("DenyCount = %v", st.DenyCount)
	}
}

func TestOverlapProperties(t *testing.T) {
	d := MotivatingExample()
	st := ComputeStats(d)
	n := d.NumSources()
	for s := 0; s < n; s++ {
		if st.Overlap[s][s] != 1 {
			t.Errorf("Overlap[%d][%d] = %v, want 1", s, s, st.Overlap[s][s])
		}
		for u := 0; u < n; u++ {
			if st.Overlap[s][u] != st.Overlap[u][s] {
				t.Errorf("overlap not symmetric at (%d,%d)", s, u)
			}
			if st.Overlap[s][u] < 0 || st.Overlap[s][u] > 1 {
				t.Errorf("overlap out of range at (%d,%d): %v", s, u, st.Overlap[s][u])
			}
		}
	}
	// s1 votes {r2,r3,r5}, s3 votes {r3,r6,r9,r11,r12}: intersection {r3},
	// union 7 facts -> 1/7.
	if got := st.Overlap[0][2]; math.Abs(got-1.0/7) > 1e-12 {
		t.Errorf("overlap(s1,s3) = %v, want 1/7", got)
	}
}

func TestStatsRespectGoldenRestriction(t *testing.T) {
	b := NewBuilder()
	b.AddSources("s")
	f1 := b.Fact("a") // correct vote
	f2 := b.Fact("b") // incorrect vote
	b.Vote(f1, 0, Affirm)
	b.Vote(f2, 0, Affirm)
	b.Label(f1, True)
	b.Label(f2, False)
	d := b.Build()
	if got := ComputeStats(d).Accuracy[0]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("accuracy = %v, want 0.5 over both labeled facts", got)
	}
	b.Golden([]int{f1})
	d = b.Build()
	if got := ComputeStats(d).Accuracy[0]; got != 1 {
		t.Errorf("accuracy = %v, want 1 when restricted to golden fact a", got)
	}
}

func TestTrueAccuracyIgnoresGolden(t *testing.T) {
	b := NewBuilder()
	b.AddSources("s")
	f1 := b.Fact("a")
	f2 := b.Fact("b")
	b.Vote(f1, 0, Affirm)
	b.Vote(f2, 0, Affirm)
	b.Label(f1, True)
	b.Label(f2, False)
	b.Golden([]int{f1})
	d := b.Build()
	if got := TrueAccuracy(d)[0]; math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TrueAccuracy = %v, want 0.5 (golden set must be ignored)", got)
	}
}

// TestCoverageBounds is a property test: random small datasets always yield
// coverage, overlap and accuracy inside [0, 1] and a valid structure.
func TestCoverageBounds(t *testing.T) {
	f := func(seed int64) bool {
		d := randomDataset(seed, 7, 40)
		if err := d.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		st := ComputeStats(d)
		for s := 0; s < d.NumSources(); s++ {
			if st.Coverage[s] < 0 || st.Coverage[s] > 1 {
				return false
			}
			if st.Accuracy[s] < 0 || st.Accuracy[s] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// randomDataset builds a deterministic pseudo-random dataset for property
// tests. It uses a simple LCG so tests do not depend on math/rand's stream
// stability across Go versions.
func randomDataset(seed int64, sources, facts int) *Dataset {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*2862933555777941757 + 3037000493
		return state >> 33
	}
	b := NewBuilder()
	for s := 0; s < sources; s++ {
		b.Source(srcName(s))
	}
	for f := 0; f < facts; f++ {
		fi := b.Fact(factName(f))
		for s := 0; s < sources; s++ {
			switch next() % 5 {
			case 0, 1:
				b.Vote(fi, s, Affirm)
			case 2:
				b.Vote(fi, s, Deny)
			}
		}
		switch next() % 3 {
		case 0:
			b.Label(fi, True)
		case 1:
			b.Label(fi, False)
		}
	}
	return b.Build()
}

func srcName(i int) string  { return "s" + string(rune('A'+i%26)) }
func factName(i int) string { return "f" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
