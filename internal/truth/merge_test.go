package truth

import "testing"

func mkDataset(fill func(*Builder)) *Dataset {
	b := NewBuilder()
	fill(b)
	return b.Build()
}

func TestMergeUnionsDisjoint(t *testing.T) {
	a := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Affirm)
		b.LabelNamed("x", True)
	})
	c := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("y"), b.Source("s2"), Deny)
	})
	m, err := Merge(MergeStrict, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFacts() != 2 || m.NumSources() != 2 || m.NumVotes() != 2 {
		t.Fatalf("merged shape (%d,%d,%d)", m.NumFacts(), m.NumSources(), m.NumVotes())
	}
	if m.Label(m.FactIndex("x")) != True {
		t.Error("label lost in merge")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSharedFactAndSource(t *testing.T) {
	a := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Affirm)
	})
	c := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s2"), Affirm)
	})
	m, err := Merge(MergeStrict, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFacts() != 1 || m.NumVotes() != 2 {
		t.Fatalf("merged shape facts=%d votes=%d", m.NumFacts(), m.NumVotes())
	}
}

func TestMergeStrictConflict(t *testing.T) {
	a := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Affirm)
	})
	c := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Deny)
	})
	if _, err := Merge(MergeStrict, a, c); err == nil {
		t.Fatal("strict merge must fail on a vote conflict")
	}
}

func TestMergePreferLater(t *testing.T) {
	a := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Affirm)
	})
	c := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Deny)
	})
	m, err := Merge(MergePreferLater, a, c)
	if err != nil {
		t.Fatal(err)
	}
	if m.Vote(0, 0) != Deny {
		t.Error("later dataset's vote should win")
	}
	// Reversed order: the affirm wins.
	m, err = Merge(MergePreferLater, c, a)
	if err != nil {
		t.Fatal(err)
	}
	if m.Vote(0, 0) != Affirm {
		t.Error("later dataset's vote should win (reversed)")
	}
}

func TestMergePreferDeny(t *testing.T) {
	a := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Deny)
	})
	c := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Affirm)
	})
	// Deny survives whichever side it is on.
	for _, pair := range [][]*Dataset{{a, c}, {c, a}} {
		m, err := Merge(MergePreferDeny, pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if m.Vote(0, 0) != Deny {
			t.Error("Deny must win under MergePreferDeny")
		}
	}
}

func TestMergeLabelConflict(t *testing.T) {
	a := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s1"), Affirm)
		b.LabelNamed("x", True)
	})
	c := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("x"), b.Source("s2"), Affirm)
		b.LabelNamed("x", False)
	})
	if _, err := Merge(MergePreferLater, a, c); err == nil {
		t.Fatal("conflicting labels must fail")
	}
}

func TestMergeGoldenByName(t *testing.T) {
	a := mkDataset(func(b *Builder) {
		f := b.Fact("x")
		b.Vote(f, b.Source("s1"), Affirm)
		b.Label(f, True)
		b.Golden([]int{f})
	})
	c := mkDataset(func(b *Builder) {
		b.Vote(b.Fact("y"), b.Source("s1"), Affirm)
		b.LabelNamed("y", False)
	})
	m, err := Merge(MergeStrict, c, a) // golden fact merged second
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasGolden() {
		t.Fatal("golden set lost")
	}
	g := m.Golden()
	if len(g) != 1 || m.FactName(g[0]) != "x" {
		t.Errorf("golden = %v", g)
	}
}

func TestMergeEmptyAndIdentity(t *testing.T) {
	m, err := Merge(MergeStrict)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFacts() != 0 {
		t.Error("empty merge should be empty")
	}
	d := MotivatingExample()
	m, err = Merge(MergeStrict, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVotes() != d.NumVotes() || m.NumFacts() != d.NumFacts() {
		t.Error("identity merge changed the dataset")
	}
	// Self-merge is idempotent (identical votes are not conflicts).
	m, err = Merge(MergeStrict, d, d)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumVotes() != d.NumVotes() {
		t.Error("self-merge should be idempotent")
	}
}
