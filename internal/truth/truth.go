// Package truth defines the shared data model for the corroboration
// (truth-discovery) problem studied in Wu & Marian, "Corroborating Facts
// from Affirmative Statements" (EDBT 2014): a set of sources casting
// affirmative (T), negative (F), or absent (-) votes over a set of boolean
// facts, plus optional ground-truth labels used for evaluation.
//
// The package is deliberately algorithm-free: every corroboration method in
// this repository (the paper's IncEstimate as well as all baselines) consumes
// a *Dataset and produces a *Result, so datasets, metrics, and algorithms
// compose freely.
package truth

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Vote is a single source's statement about a single fact.
type Vote int8

const (
	// Absent means the source expressed no opinion about the fact ('-' in
	// the paper). It is the zero value so that unset entries in a dense
	// matrix naturally mean "no vote".
	Absent Vote = iota
	// Affirm is an affirmative statement: the source supports the fact
	// being true (a T vote).
	Affirm
	// Deny is a disagreeing statement: the source claims the fact is false
	// (an F vote, e.g. a restaurant listed as CLOSED).
	Deny
)

// String returns the paper's notation for the vote: "T", "F", or "-".
func (v Vote) String() string {
	switch v {
	case Affirm:
		return "T"
	case Deny:
		return "F"
	case Absent:
		return "-"
	default:
		return fmt.Sprintf("Vote(%d)", int8(v))
	}
}

// Valid reports whether v is one of the three defined vote values.
func (v Vote) Valid() bool { return v == Absent || v == Affirm || v == Deny }

// ParseVote converts the paper's notation ("T", "F", "-") to a Vote.
// It accepts a few common synonyms ("true"/"false"/"1"/"0"/"") and is
// case-insensitive.
func ParseVote(s string) (Vote, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "t", "true", "1", "+", "yes":
		return Affirm, nil
	case "f", "false", "0", "no":
		return Deny, nil
	case "-", "", "_", "none", "?":
		return Absent, nil
	default:
		return Absent, fmt.Errorf("truth: cannot parse vote %q", s)
	}
}

// Label is the (possibly unknown) ground-truth value of a fact.
type Label int8

const (
	// Unknown means no ground truth is available for the fact.
	Unknown Label = iota
	// True means the fact is correct.
	True
	// False means the fact is erroneous.
	False
)

// String returns "true", "false", or "unknown".
func (l Label) String() string {
	switch l {
	case True:
		return "true"
	case False:
		return "false"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Label(%d)", int8(l))
	}
}

// Valid reports whether l is one of the three defined label values.
func (l Label) Valid() bool { return l == Unknown || l == True || l == False }

// ParseLabel converts a string to a Label.
func ParseLabel(s string) (Label, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "true", "t", "1":
		return True, nil
	case "false", "f", "0":
		return False, nil
	case "unknown", "", "-", "?":
		return Unknown, nil
	default:
		return Unknown, fmt.Errorf("truth: cannot parse label %q", s)
	}
}

// LabelOf converts a corroborated probability to a Label using the paper's
// Equation 2: true iff the probability is at least the threshold (0.5).
func LabelOf(prob, threshold float64) Label {
	if prob >= threshold {
		return True
	}
	return False
}

// Threshold is the decision threshold used throughout the paper (Eq. 2).
const Threshold = 0.5

// SourceVote is one (source, vote) entry in a fact's posting list.
type SourceVote struct {
	Source int
	Vote   Vote
}

// FactVote is one (fact, vote) entry in a source's posting list.
type FactVote struct {
	Fact int
	Vote Vote
}

// ErrNoVotes is returned by algorithms that require at least one vote.
var ErrNoVotes = errors.New("truth: dataset contains no votes")

// Dataset is an immutable-after-build sparse vote matrix: |S| sources by
// |F| facts. Build one with a Builder.
//
// # Storage layout
//
// The canonical storage is flat and columnar: names live once in two
// append-only symbol tables (Interner), and the votes are a fact-major CSR
// matrix of parallel columns — factStarts[f] .. factStarts[f+1] delimits
// fact f's slots in voteSources (interned uint32 source IDs) and voteValues
// (the T/F votes). Labels are one more parallel column. Nothing in the
// canonical form is a pointer, so a 10M-fact world is a handful of large
// contiguous allocations instead of millions of small ones.
//
// Because every algorithm in the repository iterates posting lists as
// []SourceVote / []FactVote, Build additionally materializes two derived
// iteration views — factArena (fact orientation) and srcArena (source
// orientation, with its own srcStarts) — each a single contiguous
// allocation that VotesOnFact/VotesBySource slice into. The views are
// plain re-encodings of the columns; Validate cross-checks them.
type Dataset struct {
	sources Interner
	facts   Interner

	// Canonical columnar storage (fact-major CSR). len(factStarts) is
	// NumFacts()+1; voteSources and voteValues are parallel.
	factStarts  []uint32
	voteSources []uint32
	voteValues  []Vote

	// labels[f] is the ground truth of fact f, Unknown if unavailable.
	labels []Label

	// golden, when non-nil, restricts evaluation to a subset of fact
	// indices (the paper's in-person-audited golden set).
	golden []int

	// Derived iteration views (see the type comment).
	factArena []SourceVote
	srcStarts []uint32
	srcArena  []FactVote
}

// NumSources returns |S|.
func (d *Dataset) NumSources() int { return d.sources.Len() }

// NumFacts returns |F|.
func (d *Dataset) NumFacts() int { return d.facts.Len() }

// NumVotes returns the total number of non-absent votes.
func (d *Dataset) NumVotes() int { return len(d.voteValues) }

// SourceName returns the display name of source s.
func (d *Dataset) SourceName(s int) string { return d.sources.Name(uint32(s)) }

// FactName returns the display name of fact f.
func (d *Dataset) FactName(f int) string { return d.facts.Name(uint32(f)) }

// SourceNames returns a copy of all source names in index order.
func (d *Dataset) SourceNames() []string { return d.sources.Names() }

// FactNames returns a copy of all fact names in index order.
func (d *Dataset) FactNames() []string { return d.facts.Names() }

// SourceIndex returns the index of the source with the given name, or -1.
func (d *Dataset) SourceIndex(name string) int {
	if id, ok := d.sources.Lookup(name); ok {
		return int(id)
	}
	return -1
}

// FactIndex returns the index of the fact with the given name, or -1.
func (d *Dataset) FactIndex(name string) int {
	if id, ok := d.facts.Lookup(name); ok {
		return int(id)
	}
	return -1
}

// Vote returns source s's vote on fact f (Absent if none).
func (d *Dataset) Vote(f, s int) Vote {
	for i := d.factStarts[f]; i < d.factStarts[f+1]; i++ {
		if d.voteSources[i] == uint32(s) {
			return d.voteValues[i]
		}
		if d.voteSources[i] > uint32(s) {
			break
		}
	}
	return Absent
}

// VotesOnFact returns fact f's posting list, ordered by source index.
// The returned slice is shared; callers must not modify it.
func (d *Dataset) VotesOnFact(f int) []SourceVote {
	return d.factArena[d.factStarts[f]:d.factStarts[f+1]]
}

// VotesBySource returns source s's posting list, ordered by fact index.
// The returned slice is shared; callers must not modify it.
func (d *Dataset) VotesBySource(s int) []FactVote {
	return d.srcArena[d.srcStarts[s]:d.srcStarts[s+1]]
}

// Label returns the ground truth of fact f (Unknown if unavailable).
func (d *Dataset) Label(f int) Label { return d.labels[f] }

// Labels returns a copy of all ground-truth labels in fact order.
func (d *Dataset) Labels() []Label {
	out := make([]Label, len(d.labels))
	copy(out, d.labels)
	return out
}

// HasTruth reports whether any fact carries a ground-truth label.
func (d *Dataset) HasTruth() bool {
	for _, l := range d.labels {
		if l != Unknown {
			return true
		}
	}
	return false
}

// Golden returns the evaluation subset: the explicit golden set if one was
// declared, otherwise the indices of every fact with a known label.
func (d *Dataset) Golden() []int {
	if d.golden != nil {
		out := make([]int, len(d.golden))
		copy(out, d.golden)
		return out
	}
	var out []int
	for f, l := range d.labels {
		if l != Unknown {
			out = append(out, f)
		}
	}
	return out
}

// HasGolden reports whether an explicit golden set was declared.
func (d *Dataset) HasGolden() bool { return d.golden != nil }

// EachGolden iterates the evaluation subset in the order Golden returns it,
// without allocating the copy Golden makes, stopping early when yield
// returns false. It is the allocation-free hook the pipeline layer's
// golden source and join build on.
func (d *Dataset) EachGolden(yield func(f int) bool) {
	if d.golden != nil {
		for _, f := range d.golden {
			if !yield(f) {
				return
			}
		}
		return
	}
	for f, l := range d.labels {
		if l != Unknown {
			if !yield(f) {
				return
			}
		}
	}
}

// Signature returns a canonical string identifying the exact vote pattern
// on fact f, e.g. "2:T 4:T" or "3:F 4:T". Facts with equal signatures
// received identical votes from identical sources and therefore form one
// fact group in the IncEstimate algorithm (§5.1).
func (d *Dataset) Signature(f int) string {
	if d.factStarts[f] == d.factStarts[f+1] {
		return ""
	}
	return string(d.AppendSignature(nil, f))
}

// AppendSignature appends fact f's vote signature to buf and returns the
// extended slice. It produces exactly the bytes of Signature(f) without the
// intermediate string, so group builders can reuse one buffer across a
// whole dataset (signature construction dominates group building on large
// crawls — see BenchmarkBuildGroups).
func (d *Dataset) AppendSignature(buf []byte, f int) []byte {
	start, end := d.factStarts[f], d.factStarts[f+1]
	for i := start; i < end; i++ {
		if i > start {
			buf = append(buf, ' ')
		}
		buf = strconv.AppendInt(buf, int64(d.voteSources[i]), 10)
		buf = append(buf, ':')
		switch v := d.voteValues[i]; v {
		case Affirm:
			buf = append(buf, 'T')
		case Deny:
			buf = append(buf, 'F')
		case Absent:
			buf = append(buf, '-')
		default:
			buf = append(buf, v.String()...)
		}
	}
	return buf
}

// OnlyAffirmative reports whether fact f received T votes only (f ∈ F*).
func (d *Dataset) OnlyAffirmative(f int) bool {
	start, end := d.factStarts[f], d.factStarts[f+1]
	if start == end {
		return false
	}
	for i := start; i < end; i++ {
		if d.voteValues[i] != Affirm {
			return false
		}
	}
	return true
}

// AffirmativeShare returns |F*| / |F|: the fraction of voted facts that
// carry affirmative statements only. The paper's scenario of interest has
// AffirmativeShare close to 1.
func (d *Dataset) AffirmativeShare() float64 {
	voted, only := 0, 0
	for f := 0; f < d.NumFacts(); f++ {
		if d.factStarts[f] == d.factStarts[f+1] {
			continue
		}
		voted++
		if d.OnlyAffirmative(f) {
			only++
		}
	}
	if voted == 0 {
		return 0
	}
	return float64(only) / float64(voted)
}

// Validate checks internal consistency: the CSR columns (monotone starts,
// strictly ordered in-range sources, T/F votes only, label validity), and
// that both derived iteration views are exact re-encodings of the columns.
// A Dataset produced by a Builder always validates; the method exists for
// datasets read from files.
func (d *Dataset) Validate() error {
	numFacts, numSources := d.facts.Len(), d.sources.Len()
	if len(d.labels) != numFacts {
		return fmt.Errorf("truth: %d labels for %d facts", len(d.labels), numFacts)
	}
	if len(d.factStarts) != numFacts+1 {
		return fmt.Errorf("truth: %d fact starts for %d facts", len(d.factStarts), numFacts)
	}
	if len(d.voteSources) != len(d.voteValues) {
		return fmt.Errorf("truth: %d vote sources for %d vote values", len(d.voteSources), len(d.voteValues))
	}
	if numFacts > 0 && d.factStarts[0] != 0 {
		return fmt.Errorf("truth: fact starts begin at %d, want 0", d.factStarts[0])
	}
	if len(d.factStarts) > 0 && int(d.factStarts[numFacts]) != len(d.voteValues) {
		return fmt.Errorf("truth: fact starts end at %d for %d votes", d.factStarts[numFacts], len(d.voteValues))
	}
	for f := 0; f < numFacts; f++ {
		if d.factStarts[f] > d.factStarts[f+1] {
			return fmt.Errorf("truth: fact starts not monotone at fact %d", f)
		}
		prev := -1
		for i := d.factStarts[f]; i < d.factStarts[f+1]; i++ {
			s := int(d.voteSources[i])
			if s <= prev {
				return fmt.Errorf("truth: fact %d posting list not strictly ordered", f)
			}
			prev = s
			if s >= numSources {
				return fmt.Errorf("truth: fact %d references source %d out of range", f, s)
			}
			if v := d.voteValues[i]; v != Affirm && v != Deny {
				return fmt.Errorf("truth: fact %d stores non-vote %v", f, v)
			}
		}
	}
	if len(d.factArena) != len(d.voteValues) {
		return fmt.Errorf("truth: fact arena holds %d votes, want %d", len(d.factArena), len(d.voteValues))
	}
	for i, sv := range d.factArena {
		if uint32(sv.Source) != d.voteSources[i] || sv.Vote != d.voteValues[i] {
			return fmt.Errorf("truth: fact arena slot %d diverges from columns", i)
		}
	}
	if len(d.srcStarts) != numSources+1 {
		return fmt.Errorf("truth: %d source starts for %d sources", len(d.srcStarts), numSources)
	}
	if len(d.srcArena) != len(d.voteValues) {
		return fmt.Errorf("truth: source arena holds %d votes, want %d", len(d.srcArena), len(d.voteValues))
	}
	if numSources > 0 && d.srcStarts[0] != 0 {
		return fmt.Errorf("truth: source starts begin at %d, want 0", d.srcStarts[0])
	}
	if len(d.srcStarts) > 0 && int(d.srcStarts[numSources]) != len(d.srcArena) {
		return fmt.Errorf("truth: source starts end at %d for %d votes", d.srcStarts[numSources], len(d.srcArena))
	}
	for s := 0; s < numSources; s++ {
		if d.srcStarts[s] > d.srcStarts[s+1] {
			return fmt.Errorf("truth: source starts not monotone at source %d", s)
		}
		prev := -1
		for i := d.srcStarts[s]; i < d.srcStarts[s+1]; i++ {
			fv := d.srcArena[i]
			if fv.Fact <= prev {
				return fmt.Errorf("truth: source %d posting list not strictly ordered", s)
			}
			prev = fv.Fact
			if fv.Fact < 0 || fv.Fact >= numFacts {
				return fmt.Errorf("truth: source %d references fact %d out of range", s, fv.Fact)
			}
			if got := d.Vote(fv.Fact, s); got != fv.Vote {
				return fmt.Errorf("truth: vote mismatch between orientations at fact %d source %d: %v vs %v", fv.Fact, s, fv.Vote, got)
			}
		}
	}
	for f, l := range d.labels {
		if !l.Valid() {
			return fmt.Errorf("truth: fact %d has invalid label %d", f, int8(l))
		}
	}
	seen := make(map[int]bool, len(d.golden))
	for _, f := range d.golden {
		if f < 0 || f >= numFacts {
			return fmt.Errorf("truth: golden index %d out of range", f)
		}
		if seen[f] {
			return fmt.Errorf("truth: golden index %d duplicated", f)
		}
		seen[f] = true
	}
	return nil
}
