package truth

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// Dataset file format (CSV)
//
// The first row is a header: "fact", one column per source name, and two
// optional trailing columns "label" and "golden". Each subsequent row holds
// one fact: its name, its vote from each source in the paper's T/F/-
// notation, optionally its ground-truth label, and optionally a "1"/"0" flag
// marking membership in the golden evaluation set. Example:
//
//	fact,s1,s2,s3,label,golden
//	r1,T,-,T,true,1
//	r2,-,F,T,false,0
//
// WriteCSV always writes both trailing columns; ReadCSV accepts files with
// either, both, or neither.

// WriteCSV serializes the dataset in the documented CSV format.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := append([]string{"fact"}, d.SourceNames()...)
	header = append(header, "label", "golden")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("truth: writing CSV header: %w", err)
	}
	golden := make(map[int]bool)
	if d.HasGolden() {
		for _, f := range d.Golden() {
			golden[f] = true
		}
	}
	row := make([]string, len(header))
	for f := 0; f < d.NumFacts(); f++ {
		row[0] = d.FactName(f)
		for s := 0; s < d.NumSources(); s++ {
			row[1+s] = Absent.String()
		}
		for _, sv := range d.VotesOnFact(f) {
			row[1+sv.Source] = sv.Vote.String()
		}
		row[len(row)-2] = d.Label(f).String()
		g := "0"
		if d.HasGolden() {
			if golden[f] {
				g = "1"
			}
		} else if d.Label(f) != Unknown {
			g = "1"
		}
		row[len(row)-1] = g
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("truth: writing CSV row for fact %q: %w", d.FactName(f), err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset in the documented CSV format.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("truth: reading CSV header: %w", err)
	}
	if len(header) < 2 || strings.ToLower(strings.TrimSpace(header[0])) != "fact" {
		return nil, fmt.Errorf("truth: CSV header must start with \"fact\" and at least one source column")
	}
	cols := header[1:]
	hasGolden := len(cols) > 0 && strings.EqualFold(cols[len(cols)-1], "golden")
	if hasGolden {
		cols = cols[:len(cols)-1]
	}
	hasLabel := len(cols) > 0 && strings.EqualFold(cols[len(cols)-1], "label")
	if hasLabel {
		cols = cols[:len(cols)-1]
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("truth: CSV header declares no source columns")
	}
	// Source columns are identified positionally below (column i -> source
	// index i), which only holds when every name interns to a fresh source:
	// reject empty and repeated names instead of silently collapsing them.
	seen := make(map[string]bool, len(cols))
	for i, c := range cols {
		if strings.TrimSpace(c) == "" {
			return nil, fmt.Errorf("truth: CSV header column %d has an empty source name", i+2)
		}
		if seen[c] {
			return nil, fmt.Errorf("truth: CSV header repeats source column %q", c)
		}
		seen[c] = true
	}
	b := NewBuilder()
	b.AddSources(cols...)
	var golden []int
	goldenSeen := make(map[int]bool)
	useGoldenCol := false
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("truth: reading CSV line %d: %w", line, err)
		}
		want := 1 + len(cols)
		if hasLabel {
			want++
		}
		if hasGolden {
			want++
		}
		if len(rec) != want {
			return nil, fmt.Errorf("truth: CSV line %d has %d fields, want %d", line, len(rec), want)
		}
		f := b.Fact(rec[0])
		for s := 0; s < len(cols); s++ {
			v, err := ParseVote(rec[1+s])
			if err != nil {
				return nil, fmt.Errorf("truth: CSV line %d column %q: %w", line, cols[s], err)
			}
			if v != Absent {
				b.Vote(f, s, v)
			}
		}
		next := 1 + len(cols)
		if hasLabel {
			l, err := ParseLabel(rec[next])
			if err != nil {
				return nil, fmt.Errorf("truth: CSV line %d label: %w", line, err)
			}
			b.Label(f, l)
			next++
		}
		if hasGolden {
			switch strings.TrimSpace(rec[next]) {
			case "1", "true", "t":
				// Repeated rows re-intern the same fact; membership in the
				// golden set must not duplicate (Validate rejects that).
				if !goldenSeen[f] {
					goldenSeen[f] = true
					golden = append(golden, f)
				}
				useGoldenCol = true
			case "0", "false", "f", "":
			default:
				return nil, fmt.Errorf("truth: CSV line %d golden flag %q", line, rec[next])
			}
		}
	}
	if useGoldenCol {
		b.Golden(golden)
	}
	return b.Build(), nil
}

// SaveCSV writes the dataset to a file, creating or truncating it.
func SaveCSV(path string, d *Dataset) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("truth: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteCSV(f, d)
}

// LoadCSV reads a dataset from a file.
func LoadCSV(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("truth: opening %s: %w", path, err)
	}
	defer f.Close()
	d, err := ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("truth: parsing %s: %w", path, err)
	}
	return d, nil
}
