// Webanswers: the paper's opening example as code. "What was the total
// government revenue of Japan in 2011?" Several sources report $1.8
// trillion; the correct $1.1 trillion is out-voted and Wikipedia itself
// carries two conflicting numbers. Frequency-based ranking picks the wrong
// answer; feed the same extractions through trust-aware corroboration and
// the minority answer wins.
package main

import (
	"fmt"
	"log"

	"corroborate"
)

func main() {
	extractions := []corroborate.Extraction{
		{Source: "cia-factbook", Answer: "1.8 trillion", Rank: 0},
		{Source: "quandl", Answer: "1.8 trillion", Rank: 0},
		{Source: "tradingecon", Answer: "1.8 Trillion", Rank: 0},
		{Source: "wikipedia", Answer: "1.1 trillion", Rank: 0},
		{Source: "wikipedia", Answer: "1.97 trillion", Rank: 1},
		{Source: "finance-ministry", Answer: "1.1 trillion", Rank: 0},
	}

	// 1. Frequency-style ranking (no trust knowledge): the majority wins.
	c := corroborate.AnswerCorroborator{}
	ranked, err := c.Rank(extractions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("without source trust (frequency + prominence + originality):")
	for _, r := range ranked {
		fmt.Printf("  %-14s score=%.3f sources=%v\n", r.Answer, r.Score, r.Sources)
	}

	// 2. Learn trust from a broader corpus of questions: iterate
	// rank-then-reestimate (the corroboration loop of the 2011 framework).
	// Each aggregator serves its own stale snapshot, so their errors
	// diverge; the primary sources keep agreeing on the settled values and
	// their trust compounds across questions.
	queries := append([]corroborate.Query{
		{Name: "japan-revenue-2011", Extractions: extractions},
	}, trainingQueries()...)
	trust := learnTrust(c, queries, 4)
	fmt.Println("\ntrust learned by corroborating the full question corpus:")
	for _, name := range []string{"cia-factbook", "quandl", "tradingecon", "wikipedia", "finance-ministry"} {
		fmt.Printf("  %-18s %.2f\n", name, trust[name])
	}

	// 3. Re-rank the revenue answers under the learned trust.
	c.Trust = trust
	ranked, err = c.Rank(extractions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith learned trust:")
	for _, r := range ranked {
		fmt.Printf("  %-14s score=%.3f sources=%v\n", r.Answer, r.Score, r.Sources)
	}
	if ranked[0].Answer != "1.1 trillion" {
		log.Fatalf("expected the trusted minority answer, got %q", ranked[0].Answer)
	}
	fmt.Printf("\ncorroborated answer: %s — the correct value the majority out-voted\n", ranked[0].Answer)
}

// learnTrust iterates the framework's corroboration loop: rank every
// query's answers under the current trust, count how often each source
// backed a winning answer, smooth, and repeat until the estimates settle.
func learnTrust(c corroborate.AnswerCorroborator, queries []corroborate.Query, iters int) map[string]float64 {
	trust := map[string]float64{}
	for iter := 0; iter < iters; iter++ {
		c.Trust = trust
		wins := map[string]float64{}
		total := map[string]float64{}
		for _, q := range queries {
			ranked, err := c.Rank(q.Extractions)
			if err != nil {
				log.Fatal(err)
			}
			if len(ranked) == 0 {
				continue
			}
			winners := map[string]bool{}
			for _, s := range ranked[0].Sources {
				winners[s] = true
			}
			seen := map[string]bool{}
			for _, e := range q.Extractions {
				seen[e.Source] = true
			}
			for s := range seen {
				total[s]++
				if winners[s] {
					wins[s]++
				}
			}
		}
		next := map[string]float64{}
		for s, n := range total {
			// Laplace smoothing keeps every source away from 0 and 1.
			//lint:ignore logguard n is a non-negative appearance count, so the smoothed divisor n+2 is ≥ 2
			next[s] = (wins[s] + 1) / (n + 2)
		}
		trust = next
	}
	return trust
}

// trainingQueries is a small settled-question corpus in which the primary
// sources (wikipedia, finance-ministry) consistently agree on the settled
// value while each aggregator serves its own stale snapshot — their errors
// diverge, so they never form a majority bloc and corroboration can learn
// who to trust.
func trainingQueries() []corroborate.Query {
	mk := func(name, right, w1, w2, w3 string) corroborate.Query {
		return corroborate.Query{Name: name, Extractions: []corroborate.Extraction{
			{Source: "wikipedia", Answer: right, Rank: 0},
			{Source: "finance-ministry", Answer: right, Rank: 0},
			{Source: "cia-factbook", Answer: w1, Rank: 0},
			{Source: "quandl", Answer: w2, Rank: 0},
			{Source: "tradingecon", Answer: w3, Rank: 0},
		}}
	}
	return []corroborate.Query{
		mk("japan-debt-2011", "230 percent of gdp", "180 percent of gdp", "205 percent of gdp", "195 percent of gdp"),
		mk("japan-budget-2011", "92 trillion yen", "83 trillion yen", "88 trillion yen", "95 trillion yen"),
		mk("japan-deficit-2011", "10 percent of gdp", "8 percent of gdp", "7 percent of gdp", "12 percent of gdp"),
		mk("japan-tax-revenue-2011", "42 trillion yen", "39 trillion yen", "45 trillion yen", "37 trillion yen"),
		mk("japan-bond-issuance-2011", "44 trillion yen", "41 trillion yen", "47 trillion yen", "49 trillion yen"),
	}
}
