// Restaurants: the paper's headline scenario end to end — generate the
// simulated NYC crawl, corroborate it with every method, compare golden-set
// quality, and plot (textually) the multi-value trust trajectory that lets
// the incremental algorithm reject stale listings.
package main

import (
	"fmt"
	"log"

	"corroborate"
)

func main() {
	world, err := corroborate.GenerateRestaurantWorld(corroborate.RestaurantConfig{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	d := world.Dataset
	stats := corroborate.ComputeStats(d)
	fmt.Printf("simulated crawl: %d listings (%d open / %d closed), %d with CLOSED marks\n",
		d.NumFacts(), world.Open, world.Closed, world.FlaggedListings)
	fmt.Printf("golden set: %d listings audited\n\n", len(d.Golden()))

	fmt.Println("source          coverage  golden-accuracy  (targets from the paper's Table 3)")
	for s, p := range world.Profiles {
		fmt.Printf("%-15s %.2f      %.2f             (%.2f / %.2f)\n",
			p.Name, stats.Coverage[s], stats.Accuracy[s], p.Coverage, p.Accuracy)
	}
	fmt.Println()

	fmt.Println("method          precision  recall  accuracy  stale-found")
	for _, m := range []corroborate.Method{
		corroborate.Voting(),
		corroborate.Counting(),
		corroborate.TwoEstimate(),
		corroborate.BayesEstimate(),
		corroborate.MLLogistic(),
		corroborate.IncEstPS(),
		corroborate.IncEstScale(),
	} {
		r, err := m.Run(d)
		if err != nil {
			log.Fatal(err)
		}
		rep := corroborate.Evaluate(d, r)
		fmt.Printf("%-15s %.2f       %.2f    %.2f      %d\n",
			m.Name(), rep.Precision, rep.Recall, rep.Accuracy, rep.Confusion.TN)
	}

	// The multi-value trust score in action: how each source's trust moves
	// as batches of listings are corroborated.
	run, err := corroborate.IncEstScale().RunDetailed(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nIncEstScale used %d time points; trust trajectory (sampled):\n", len(run.Trajectory))
	fmt.Print("t     ")
	for s := 0; s < d.NumSources(); s++ {
		fmt.Printf("%-13s", d.SourceName(s))
	}
	fmt.Println()
	step := len(run.Trajectory) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(run.Trajectory); i += step {
		fmt.Printf("%-5d ", i)
		for _, tr := range run.Trajectory[i].Trust {
			fmt.Printf("%-13.2f", tr)
		}
		fmt.Println()
	}
	fmt.Println("\nthe laggard directories (YellowPages, CitySearch) dip as conflicts are")
	fmt.Println("processed — the window in which their solo listings are rejected — and")
	fmt.Println("recover toward their true accuracy as the trustworthy mass is confirmed.")
}
