// Quickstart: corroborate a handful of restaurant listings with mostly
// affirmative statements and see which ones the incremental algorithm
// rejects despite their support.
package main

import (
	"fmt"
	"log"

	"corroborate"
)

func main() {
	// Four directory sites list restaurants; listing = affirmative vote,
	// an explicit CLOSED mark = negative vote.
	b := corroborate.NewBuilder()

	votes := []struct {
		fact, source string
		vote         corroborate.Vote
	}{
		// A block of listings everyone agrees on.
		{"blue harbor grill", "menupages", corroborate.Affirm},
		{"blue harbor grill", "yelp", corroborate.Affirm},
		{"blue harbor grill", "yellowpages", corroborate.Affirm},
		{"lucky dragon", "menupages", corroborate.Affirm},
		{"lucky dragon", "yelp", corroborate.Affirm},
		{"old mill tavern", "yelp", corroborate.Affirm},
		{"old mill tavern", "menupages", corroborate.Affirm},
		{"old mill tavern", "yellowpages", corroborate.Affirm},
		// Conflicts: Menupages marks two places CLOSED that the laggard
		// directories still list.
		{"dannys grand sea palace", "menupages", corroborate.Deny},
		{"dannys grand sea palace", "yellowpages", corroborate.Affirm},
		{"dannys grand sea palace", "citysearch", corroborate.Affirm},
		{"corner diner", "menupages", corroborate.Deny},
		{"corner diner", "yellowpages", corroborate.Affirm},
		// Affirmative-only listings carried ONLY by the laggards — exactly
		// the facts a majority vote can never question.
		{"silver star cafe", "yellowpages", corroborate.Affirm},
		{"silver star cafe", "citysearch", corroborate.Affirm},
		{"royal palace buffet", "yellowpages", corroborate.Affirm},
		{"red fork kitchen", "citysearch", corroborate.Affirm},
	}
	for _, v := range votes {
		b.VoteNamed(v.fact, v.source, v.vote)
	}
	d := b.Build()

	fmt.Printf("dataset: %d facts from %d sources, %.0f%% carry affirmative votes only\n\n",
		d.NumFacts(), d.NumSources(), 100*d.AffirmativeShare())

	for _, method := range []corroborate.Method{
		corroborate.Voting(),
		corroborate.TwoEstimate(),
		corroborate.IncEstScale(),
	} {
		result, err := method.Run(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", method.Name())
		for f := 0; f < d.NumFacts(); f++ {
			fmt.Printf("  %-28s %-5v (p=%.2f)\n", d.FactName(f), result.Predictions[f], result.FactProb[f])
		}
		if result.Trust != nil {
			fmt.Print("  trust: ")
			for s := 0; s < d.NumSources(); s++ {
				fmt.Printf("%s=%.2f ", d.SourceName(s), result.Trust[s])
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Voting and TwoEstimate confirm every affirmative-only listing;")
	fmt.Println("the incremental corroborator rejects the laggard-only block after")
	fmt.Println("the CLOSED conflicts expose those directories.")
}
