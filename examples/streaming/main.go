// Streaming: the incremental algorithm as an online service. Crawl
// increments arrive as batches; each batch is corroborated under the trust
// accumulated from everything seen before, and verdicts on brand-new facts
// come purely from the carried multi-value trust — no re-processing of old
// data.
package main

import (
	"fmt"
	"log"

	"corroborate"
)

func main() {
	stream := corroborate.NewStream()

	// Day 1: the first crawl increment. MenuPages marks three of
	// YellowPages' listings CLOSED; a block of listings is well backed.
	day1 := []corroborate.BatchVote{
		{Fact: "dannys grand sea palace", Source: "menupages", Vote: corroborate.Deny},
		{Fact: "dannys grand sea palace", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "the corner diner", Source: "menupages", Vote: corroborate.Deny},
		{Fact: "the corner diner", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "old harbor house", Source: "menupages", Vote: corroborate.Deny},
		{Fact: "old harbor house", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "blue olive bistro", Source: "menupages", Vote: corroborate.Affirm},
		{Fact: "blue olive bistro", Source: "yelp", Vote: corroborate.Affirm},
		{Fact: "lucky garden", Source: "menupages", Vote: corroborate.Affirm},
		{Fact: "lucky garden", Source: "yelp", Vote: corroborate.Affirm},
	}
	report(stream, day1, "day 1 (conflicts expose the laggard)")

	// Day 2: fresh listings only — no conflicts at all. The verdicts come
	// entirely from the trust carried over from day 1.
	day2 := []corroborate.BatchVote{
		{Fact: "silver star grill", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "village fork", Source: "yelp", Vote: corroborate.Affirm},
		{Fact: "grand palace", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "red table tavern", Source: "menupages", Vote: corroborate.Affirm},
	}
	report(stream, day2, "day 2 (affirmative-only; verdicts from carried trust)")

	fmt.Println("final trust:")
	for name, tr := range stream.Trust() {
		fmt.Printf("  %-14s %.2f\n", name, tr)
	}
	fmt.Printf("total: %d batches, %d facts corroborated\n", stream.Batches(), len(stream.Decided()))
}

func report(stream *corroborate.Stream, batch []corroborate.BatchVote, title string) {
	out, err := stream.AddBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", title)
	for _, f := range out {
		fmt.Printf("  %-26s %-5v (p=%.2f)\n", f.Name, f.Prediction, f.Probability)
	}
	fmt.Println()
}
