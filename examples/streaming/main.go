// Streaming: the incremental algorithm as an online service. Crawl
// increments arrive as batches; each batch is corroborated under the trust
// accumulated from everything seen before, and verdicts on brand-new facts
// come purely from the carried multi-value trust — no re-processing of old
// data. The second act checkpoints the stream to a byte buffer and resumes
// it in a sharded engine: restored state and shard count never change a
// verdict. The final act moves the checkpoint to disk through the
// crash-safe CheckpointSink and shows its self-healing resume: a corrupt
// checkpoint is quarantined and the service starts fresh instead of
// refusing to come up.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"corroborate"
)

func main() {
	stream := corroborate.NewStream()

	// Day 1: the first crawl increment. MenuPages marks three of
	// YellowPages' listings CLOSED; a block of listings is well backed.
	day1 := []corroborate.BatchVote{
		{Fact: "dannys grand sea palace", Source: "menupages", Vote: corroborate.Deny},
		{Fact: "dannys grand sea palace", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "the corner diner", Source: "menupages", Vote: corroborate.Deny},
		{Fact: "the corner diner", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "old harbor house", Source: "menupages", Vote: corroborate.Deny},
		{Fact: "old harbor house", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "blue olive bistro", Source: "menupages", Vote: corroborate.Affirm},
		{Fact: "blue olive bistro", Source: "yelp", Vote: corroborate.Affirm},
		{Fact: "lucky garden", Source: "menupages", Vote: corroborate.Affirm},
		{Fact: "lucky garden", Source: "yelp", Vote: corroborate.Affirm},
	}
	report(stream, day1, "day 1 (conflicts expose the laggard)")

	// End of day 1: snapshot the full stream state — trust accumulators,
	// source table, decided-fact log — before the service restarts.
	var snapshot bytes.Buffer
	if err := stream.Checkpoint(&snapshot); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint after day 1: %d bytes\n\n", snapshot.Len())

	// Day 2 runs on a restored engine — here a sharded one, which fans each
	// batch's fact groups across four workers. Checkpoints are
	// shard-agnostic and sharding never changes output, so this continues
	// the day-1 stream exactly.
	restored, err := corroborate.RestoreShardedStream(&snapshot, 4)
	if err != nil {
		log.Fatal(err)
	}

	// Day 2: fresh listings only — no conflicts at all. The verdicts come
	// entirely from the trust carried over from day 1.
	day2 := []corroborate.BatchVote{
		{Fact: "silver star grill", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "village fork", Source: "yelp", Vote: corroborate.Affirm},
		{Fact: "grand palace", Source: "yellowpages", Vote: corroborate.Affirm},
		{Fact: "red table tavern", Source: "menupages", Vote: corroborate.Affirm},
	}
	report(restored, day2, "day 2 (restored + 4 shards; verdicts from carried trust)")

	fmt.Println("final trust:")
	trust := restored.Trust()
	names := make([]string, 0, len(trust))
	for name := range trust {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %-14s %.2f\n", name, trust[name])
	}
	fmt.Printf("total: %d batches, %d facts corroborated\n\n", restored.Batches(), len(restored.Decided()))

	// Durable checkpointing: the sink fsyncs the temp file and parent
	// directory around an atomic rename, so a crash at any instant leaves
	// either the old or the new checkpoint — never a torn file.
	dir, err := os.MkdirTemp("", "corroborate-stream-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sink := corroborate.NewCheckpointSink(filepath.Join(dir, "state.json"))
	if err := sink.Save(restored); err != nil {
		log.Fatal(err)
	}
	resumed, rep, err := sink.Restore(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("durable resume: resumed=%v, %d batches carried\n", rep.Resumed, resumed.Batches())

	// Self-healing: tear the checkpoint in half, as a crash of a LESS
	// careful writer might. Restore quarantines the damage and starts
	// fresh rather than blocking the service on a bad recovery point.
	raw, err := os.ReadFile(sink.Path)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(sink.Path, raw[:len(raw)/2], 0o644); err != nil {
		log.Fatal(err)
	}
	fresh, rep, err := sink.Restore(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after corruption: resumed=%v, quarantined=%s, fresh stream at batch %d\n",
		rep.Resumed, filepath.Base(rep.QuarantinedPath), fresh.Batches())
}

// engine is the batch surface shared by Stream and ShardedStream.
type engine interface {
	AddBatch([]corroborate.BatchVote) ([]corroborate.StreamFact, error)
}

func report(stream engine, batch []corroborate.BatchVote, title string) {
	out, err := stream.AddBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s:\n", title)
	for _, f := range out {
		fmt.Printf("  %-26s %-5v (p=%.2f)\n", f.Name, f.Prediction, f.Probability)
	}
	fmt.Println()
}
