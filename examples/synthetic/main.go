// Synthetic: regenerate a compact version of the paper's Figure 3 — how
// corroboration accuracy responds to the source mix and to the supply of
// explicit conflicts (F votes) on controlled synthetic workloads.
package main

import (
	"fmt"
	"log"

	"corroborate"
)

func accuracyOf(m corroborate.Method, cfg corroborate.SynthConfig) float64 {
	w, err := corroborate.GenerateSynthWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r, err := m.Run(w.Dataset)
	if err != nil {
		log.Fatal(err)
	}
	return corroborate.Evaluate(w.Dataset, r).Accuracy
}

func main() {
	const facts = 8000
	methods := []corroborate.Method{
		corroborate.IncEstScale(),
		corroborate.TwoEstimate(),
		corroborate.Voting(),
	}

	fmt.Println("figure 3(a): accuracy vs total sources (2 inaccurate)")
	fmt.Println("sources  IncEstScale  TwoEstimate  Voting")
	for total := 5; total <= 11; total += 2 {
		fmt.Printf("%-8d", total)
		for _, m := range methods {
			fmt.Printf(" %-12.2f", accuracyOf(m, corroborate.SynthConfig{
				Facts: facts, AccurateSources: total - 2, InaccurateSources: 2, Seed: 2,
			}))
		}
		fmt.Println()
	}

	fmt.Println("\nfigure 3(b): accuracy vs inaccurate sources (10 total)")
	fmt.Println("inacc    IncEstScale  TwoEstimate  Voting")
	for inacc := 0; inacc <= 8; inacc += 2 {
		fmt.Printf("%-8d", inacc)
		for _, m := range methods {
			fmt.Printf(" %-12.2f", accuracyOf(m, corroborate.SynthConfig{
				Facts: facts, AccurateSources: 10 - inacc, InaccurateSources: inacc, Seed: 2,
			}))
		}
		fmt.Println()
	}

	fmt.Println("\nfigure 3(c): accuracy vs share of facts with F votes")
	fmt.Println("eta      IncEstScale  TwoEstimate  Voting")
	for _, eta := range []float64{0.01, 0.03, 0.05} {
		fmt.Printf("%-8.2f", eta)
		for _, m := range methods {
			fmt.Printf(" %-12.2f", accuracyOf(m, corroborate.SynthConfig{
				Facts: facts, AccurateSources: 8, InaccurateSources: 2, Eta: eta, Seed: 2,
			}))
		}
		fmt.Println()
	}

	fmt.Println("\nsingle-trust corroboration stays at the majority-class accuracy —")
	fmt.Println("with nothing but affirmative statements it cannot question anything;")
	fmt.Println("the incremental multi-value trust estimator improves as accurate")
	fmt.Println("sources are added and degrades gracefully as inaccurate ones take over.")
}
