// Dedup: the data-cleaning front half of the paper's pipeline — take a raw
// multi-source crawl full of near-duplicate listings, deduplicate it with
// address normalization + term/3-gram cosine similarity, and corroborate
// the resulting entities (one fact per restaurant, one affirmative vote per
// source that lists it).
package main

import (
	"fmt"
	"log"

	"corroborate"
)

func main() {
	raw, _ := corroborate.GenerateCrawl(corroborate.CrawlConfig{Entities: 1200, Seed: 7})
	fmt.Printf("raw crawl: %d listings (the paper started from 42,969)\n", len(raw))

	entities, err := corroborate.Deduplicate(raw, corroborate.DedupOptions{Threshold: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deduplication: %d entities (the paper ended at 36,916)\n\n", len(entities))

	// A taste of the similarity machinery.
	a := corroborate.NormalizeAddress("346 W 46th St, NY")
	b := corroborate.NormalizeAddress("346 West 46th Street, New York")
	fmt.Printf("normalized: %q vs %q -> similarity %.2f\n\n", a, b, corroborate.Similarity(a, b))

	// Turn the entities into a corroboration dataset: each source that
	// contributed a listing affirms the restaurant; CLOSED marks deny it.
	builder := corroborate.NewBuilder()
	for _, e := range entities {
		fact := builder.Fact(e.Key + " | " + e.Name)
		for _, li := range e.Listings {
			l := raw[li]
			v := corroborate.Affirm
			if l.Closed {
				v = corroborate.Deny
			}
			builder.Vote(fact, builder.Source(l.Source), v)
		}
	}
	d := builder.Build()
	result, err := corroborate.IncEstScale().Run(d)
	if err != nil {
		log.Fatal(err)
	}
	confirmed := 0
	for _, p := range result.Predictions {
		if p == corroborate.True {
			confirmed++
		}
	}
	fmt.Printf("corroborated the deduplicated entities: %d of %d confirmed\n", confirmed, d.NumFacts())
	fmt.Println("(every entity here is genuine, so near-total confirmation is expected;")
	fmt.Println(" see examples/restaurants for a world with stale listings to reject)")
}
