// Hubdub: corroboration under ample conflict — the opposite regime from
// the affirmative-statement scenario. Simulates a prediction-market
// snapshot (settled multi-answer questions, heterogeneous bettors) and
// compares the error counts of the classic corroborators, as in the
// paper's Table 7.
package main

import (
	"fmt"
	"log"

	"corroborate"
)

func main() {
	world, err := corroborate.GenerateHubdubWorld(corroborate.HubdubConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	d := world.Dataset
	fmt.Printf("simulated snapshot: %d candidate answers over %d questions, %d users, %d bets\n",
		d.NumFacts(), len(world.Answers), d.NumSources(), world.Bets)
	fmt.Printf("affirmative-only facts: %.0f%% (conflict is ample here)\n\n", 100*d.AffirmativeShare())

	methods := []corroborate.Method{
		corroborate.Voting(),
		corroborate.Counting(),
		corroborate.TwoEstimate(),
		corroborate.ThreeEstimate(),
		corroborate.TruthFinder(),
		corroborate.PooledInvest(),
	}
	fmt.Println("method          errors (FP+FN over all answer-facts)   questions wrong (argmax)")
	for _, m := range methods {
		r, err := m.Run(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %-38d %d/%d\n", m.Name(), world.Errors(r), world.QuestionsWrong(r), len(world.Answers))
	}

	fmt.Println("\nwith explicit disagreement in the data, iterative trust estimation")
	fmt.Println("(TwoEstimate and friends) separates the market's regulars from the")
	fmt.Println("drive-by bettors and beats the per-question majority.")
}
