// Extensions: the capabilities layered on top of the paper — per-category
// trust (a directory can be reliable in one borough and stale in another),
// source-dependence detection (copiers share each other's errors), and
// statistical tooling (bootstrap intervals, significance tests).
package main

import (
	"fmt"
	"log"

	"corroborate"
)

func main() {
	d := buildWorld()

	// 1. Per-category trust: the same source, two personalities.
	catEst := corroborate.NewCategoryEstimate(
		func() corroborate.Method { return corroborate.IncEstScale() },
		corroborate.ByNamePrefix('/'),
	)
	run, err := catEst.RunDetailed(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-category trust of 'cityguide':")
	cityguide := d.SourceIndex("cityguide")
	for _, ct := range run.PerCategory {
		fmt.Printf("  %-10s %.2f\n", ct.Category, ct.Trust[cityguide])
	}
	fmt.Printf("  flat       %.2f  (one number hides the split)\n\n", run.Trust[cityguide])

	// 2. Source dependence: who copies whom?
	flat, err := corroborate.IncEstScale().Run(d)
	if err != nil {
		log.Fatal(err)
	}
	matrix, err := corroborate.SourceDependence(d, flat, corroborate.DependenceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairwise dependence (P[copying]):")
	for i := 0; i < d.NumSources(); i++ {
		for j := i + 1; j < d.NumSources(); j++ {
			if matrix[i][j] > 0.5 {
				fmt.Printf("  %s <-> %s: %.2f\n", d.SourceName(i), d.SourceName(j), matrix[i][j])
			}
		}
	}

	// 3. Statistics: is the incremental estimator's edge significant here?
	voting, _ := corroborate.Voting().Run(d)
	p := corroborate.SignificanceTest(d, flat, voting, 10000, 1)
	iv, _ := corroborate.BootstrapAccuracy(d, flat, 2000, 0.95, 1)
	repA := corroborate.Evaluate(d, flat)
	repB := corroborate.Evaluate(d, voting)
	fmt.Printf("\nIncEstScale accuracy %.2f %s vs Voting %.2f: paired permutation p = %.4f\n",
		repA.Accuracy, iv, repB.Accuracy, p)
}

// buildWorld wires a two-borough world with a split-personality directory
// and a pair of mirroring sources.
func buildWorld() *corroborate.Dataset {
	b := corroborate.NewBuilder()
	cityguide := b.Source("cityguide") // great uptown, stale downtown
	mirrorA := b.Source("mirror-a")    // mirror-b copies mirror-a
	mirrorB := b.Source("mirror-b")
	auditor := b.Source("auditor")

	fact := func(name string, label corroborate.Label, votes ...func(int)) {
		f := b.Fact(name)
		b.Label(f, label)
		for _, v := range votes {
			v(f)
		}
	}
	affirm := func(s int) func(int) { return func(f int) { b.Vote(f, s, corroborate.Affirm) } }
	deny := func(s int) func(int) { return func(f int) { b.Vote(f, s, corroborate.Deny) } }

	for i := 0; i < 10; i++ {
		fact(fmt.Sprintf("uptown/ok%d", i), corroborate.True,
			affirm(cityguide), affirm(auditor))
	}
	for i := 0; i < 8; i++ {
		fact(fmt.Sprintf("downtown/ok%d", i), corroborate.True,
			affirm(auditor), affirm(mirrorA), affirm(mirrorB))
	}
	for i := 0; i < 4; i++ {
		fact(fmt.Sprintf("downtown/exposed%d", i), corroborate.False,
			affirm(cityguide), deny(auditor))
	}
	for i := 0; i < 6; i++ {
		fact(fmt.Sprintf("downtown/stale%d", i), corroborate.False,
			affirm(cityguide))
	}
	// The mirrors share a block of errors the auditor catches — the
	// copying signature.
	for i := 0; i < 5; i++ {
		fact(fmt.Sprintf("downtown/mirrored%d", i), corroborate.False,
			affirm(mirrorA), affirm(mirrorB), deny(auditor))
	}
	return b.Build()
}
