GO ?= go

.PHONY: all build test vet race check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The race target covers internal/core, where the parallel ∆H ranker lives;
# the equivalence tests force the concurrent path even on one CPU.
race:
	$(GO) test -race ./internal/core/...

# check is the CI gate: compile, static checks, the full test suite, and
# the race detector.
check: build vet test race

# bench runs the core/score/entropy/truth benchmarks and refreshes
# BENCH_1.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh
