GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test test-invariants vet lint lint-json race check bench bench-smoke fuzz-smoke robustness-smoke daemon-smoke golden

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-invariants re-runs the suite with the runtime assertion layer
# (internal/invariant) compiled in: probability/entropy/trust invariants
# panic instead of silently corrupting results.
test-invariants:
	$(GO) test -tags invariants ./...

# vet runs the stock analyzers, plus the shadow checker when its vettool
# is installed (go.dev/x/tools/go/analysis/passes/shadow) — the gate skips
# it gracefully on machines without it rather than requiring a download.
vet:
	$(GO) vet ./...
	@if command -v shadow >/dev/null 2>&1; then \
		echo "$(GO) vet -vettool=$$(command -v shadow) ./..."; \
		$(GO) vet -vettool=$$(command -v shadow) ./...; \
	else \
		echo "shadow vettool not installed; skipping (go install golang.org/x/tools/go/analysis/passes/shadow/cmd/shadow@latest)"; \
	fi

# lint runs corrolint, the repository's domain-aware static-analysis suite
# (8 per-function + 3 interprocedural analyzers; see cmd/corrolint and
# DESIGN.md §13) against the committed baseline. -ratchet makes stale
# baseline entries an error, so the debt file can only shrink.
lint:
	$(GO) run ./cmd/corrolint -baseline lint.baseline -ratchet ./...

# lint-json writes the machine-readable report (CI uploads it as an
# artifact). The leading '-' keeps the target from failing: the report is
# most useful exactly when the lint gate is red.
lint-json:
	-$(GO) run ./cmd/corrolint -json -baseline lint.baseline ./... > corrolint.json

# The race target covers internal/core — the parallel ∆H ranker, the sharded
# stream's worker pool, and the fault-injection suite (worker panics,
# mid-batch cancellation, filesystem faults) — plus internal/fault itself,
# the engine runtime, the serving layer's admission/drain/soak battery,
# and the root package's per-method observer and mid-run-cancellation
# tests; the equivalence and differential tests force the concurrent paths
# even on one CPU.
race:
	$(GO) test -race ./internal/core/... ./internal/fault/... ./internal/engine/... ./internal/serve/... ./internal/pipeline/...
	$(GO) test -race -run 'TestObserverRoundCount|TestCancellationPerMethod|TestPreCancelledContext' .
	# The lazy-PQ ranking suite once more with -count=2: the second run
	# re-ranks through warm pair/key caches, racing the cache maintenance
	# paths that a single cold run never revisits.
	$(GO) test -race -count=2 -run 'TestLazyPQEquivalence|TestLazyPQDeterminism|TestEngineMatchesReference' ./internal/core

# golden regenerates the differential-test fixtures under testdata/golden
# and the corrolint analyzer goldens — run it after a deliberate
# output-format or numeric change, then review the diff.
golden:
	$(GO) test -run TestGoldenDifferential -update .
	$(GO) test -run TestAnalyzerGolden -update ./internal/lint

# check is the CI gate: compile, static checks (vet + corrolint), the full
# test suite with and without runtime invariants, and the race detector.
check: build vet lint test test-invariants race

# bench runs the core/score/entropy/truth/pipeline benchmarks and
# refreshes BENCH_5.json (see scripts/bench.sh).
bench:
	sh scripts/bench.sh

# bench-smoke compiles and single-steps every benchmark (-benchtime=1x,
# -short skips the 200k-fact worlds): it proves the benchmarks still run —
# a broken world builder or a renamed headline benchmark fails CI instead
# of being discovered at the next BENCH_N refresh. No timing is recorded.
bench-smoke:
	$(GO) test -run='^$$' -bench . -benchtime=1x -benchmem -short ./internal/core ./internal/score ./internal/entropy ./internal/truth ./internal/pipeline

# fuzz-smoke gives every fuzz target a short budget (FUZZTIME each) — enough
# to catch regressions in the parsers and normalizers without tying up CI.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzParseVote -fuzztime=$(FUZZTIME) ./internal/truth
	$(GO) test -run='^$$' -fuzz=FuzzParseLabel -fuzztime=$(FUZZTIME) ./internal/truth
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/truth
	$(GO) test -run='^$$' -fuzz=FuzzReadJSON -fuzztime=$(FUZZTIME) ./internal/truth
	$(GO) test -run='^$$' -fuzz=FuzzNormalizeAddress -fuzztime=$(FUZZTIME) ./internal/dedup
	$(GO) test -run='^$$' -fuzz=FuzzSimilarity -fuzztime=$(FUZZTIME) ./internal/dedup
	$(GO) test -run='^$$' -fuzz=FuzzIntern -fuzztime=$(FUZZTIME) ./internal/truth
	$(GO) test -run='^$$' -fuzz=FuzzCheckpoint -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzRestore -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzScenarioConfig -fuzztime=$(FUZZTIME) ./internal/synth
	$(GO) test -run='^$$' -fuzz=FuzzQueryParams -fuzztime=$(FUZZTIME) ./internal/serve

# robustness-smoke runs the accuracy-under-attack floors on the quick grid
# (seconds): every registered method plus the decayed/undecayed stream over
# x% adversarial sources × y batches, with deterministic floors that fail
# when a change degrades behavior under the attack scenarios (see
# internal/experiments/robust_test.go and DESIGN.md §14).
robustness-smoke:
	$(GO) test -run='TestRobustness|TestColluder|TestMetamorphic' -count=1 ./internal/experiments ./internal/depend ./internal/synth

# daemon-smoke boots the real corrod binary on an ephemeral port, bursts a
# seeded loadgen scenario through the admission queue, SIGTERMs it, and
# asserts the restart resumes exactly the acknowledged state with clean
# exit codes throughout — the serving lifecycle of DESIGN.md §15 rehearsed
# end to end (see scripts/daemon_smoke.sh).
daemon-smoke:
	sh scripts/daemon_smoke.sh
