package corroborate_test

import (
	"os"
	"strings"
	"testing"

	"corroborate/internal/experiments"
)

// TestREADMERobustnessTable keeps the README's generated
// accuracy-under-attack table in lockstep with the quick robustness grid:
// the markers delimit exactly what RobustnessMarkdown renders. The grid is
// seeded, so a mismatch means behavior changed — regenerate with
// `go run ./cmd/experiments -run robustness -quick` and review the diff
// before pasting.
func TestREADMERobustnessTable(t *testing.T) {
	const (
		begin = "<!-- robustness:begin -->"
		end   = "<!-- robustness:end -->"
	)
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	i := strings.Index(readme, begin)
	j := strings.Index(readme, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md is missing the %s / %s markers", begin, end)
	}
	want, err := experiments.RobustnessMarkdown(experiments.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSpace(readme[i+len(begin) : j])
	if got != strings.TrimSpace(want) {
		t.Errorf("README robustness table is out of sync with the quick grid.\n--- README ---\n%s\n--- RobustnessMarkdown() ---\n%s\nPaste the generated table between the markers.", got, want)
	}
}
