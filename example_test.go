package corroborate_test

import (
	"fmt"

	"corroborate"
)

// The paper's motivating example end to end: corroborate Table 1 with the
// incremental algorithm and read off the verdicts the single-trust methods
// cannot reach.
func ExampleIncEstHeu() {
	d := corroborate.MotivatingExample()
	result, err := corroborate.IncEstHeu().Run(d)
	if err != nil {
		panic(err)
	}
	for _, name := range []string{"r5", "r6", "r12"} {
		f := d.FactIndex(name)
		fmt.Printf("%s: %v\n", name, result.Predictions[f])
	}
	rep := corroborate.Evaluate(d, result)
	fmt.Printf("precision %.2f recall %.2f accuracy %.2f\n", rep.Precision, rep.Recall, rep.Accuracy)
	// Output:
	// r5: false
	// r6: false
	// r12: false
	// precision 0.78 recall 1.00 accuracy 0.83
}

// Building a dataset by hand: listings affirm, CLOSED marks deny.
func ExampleBuilder() {
	b := corroborate.NewBuilder()
	b.VoteNamed("dannys", "yellowpages", corroborate.Affirm)
	b.VoteNamed("dannys", "menupages", corroborate.Deny)
	b.VoteNamed("harbor", "menupages", corroborate.Affirm)
	d := b.Build()
	fmt.Println(d.NumFacts(), "facts from", d.NumSources(), "sources")
	fmt.Println("dannys votes:", d.Signature(d.FactIndex("dannys")))
	// Output:
	// 2 facts from 2 sources
	// dannys votes: 0:T 1:F
}

// TwoEstimate on the motivating example reproduces the paper's §2.1 trust
// vector.
func ExampleTwoEstimate() {
	d := corroborate.MotivatingExample()
	result, err := corroborate.TwoEstimate().Run(d)
	if err != nil {
		panic(err)
	}
	for s := 0; s < d.NumSources(); s++ {
		fmt.Printf("%s=%.1f ", d.SourceName(s), result.Trust[s])
	}
	fmt.Println()
	// Output:
	// s1=1.0 s2=1.0 s3=0.8 s4=0.9 s5=1.0
}

// Streaming corroboration: the first batch exposes a source; the second
// batch's affirmative-only facts are judged by the carried trust.
func ExampleStream() {
	st := corroborate.NewStream()
	_, err := st.AddBatch([]corroborate.BatchVote{
		{Fact: "x1", Source: "flagger", Vote: corroborate.Deny},
		{Fact: "x1", Source: "laggard", Vote: corroborate.Affirm},
		{Fact: "ok", Source: "flagger", Vote: corroborate.Affirm},
	})
	if err != nil {
		panic(err)
	}
	out, err := st.AddBatch([]corroborate.BatchVote{
		{Fact: "solo", Source: "laggard", Vote: corroborate.Affirm},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("solo:", out[0].Prediction)
	// Output:
	// solo: false
}

// Entropy-driven audit planning: which facts should be verified in person
// first?
func ExamplePlanAudit() {
	d := corroborate.MotivatingExample()
	result, err := corroborate.IncEstScale().Run(d)
	if err != nil {
		panic(err)
	}
	plan, err := corroborate.PlanAudit(d, result, 2, corroborate.AuditOptions{})
	if err != nil {
		panic(err)
	}
	for _, item := range plan {
		fmt.Printf("check %s (informs %d facts)\n", d.FactName(item.Fact), item.GroupSize)
	}
	// Output:
	// check r4 (informs 2 facts)
	// check r8 (informs 2 facts)
}
