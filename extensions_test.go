package corroborate_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"corroborate"
)

func TestStreamPublicAPI(t *testing.T) {
	st := corroborate.NewStream()
	out, err := st.AddBatch([]corroborate.BatchVote{
		{Fact: "a", Source: "s1", Vote: corroborate.Affirm},
		{Fact: "b", Source: "s1", Vote: corroborate.Deny},
		{Fact: "b", Source: "s2", Vote: corroborate.Affirm},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("decided %d facts", len(out))
	}
	if st.Batches() != 1 {
		t.Errorf("Batches = %d", st.Batches())
	}
}

func TestShardedStreamPublicAPI(t *testing.T) {
	batch := []corroborate.BatchVote{
		{Fact: "a", Source: "s1", Vote: corroborate.Affirm},
		{Fact: "a", Source: "s2", Vote: corroborate.Affirm},
		{Fact: "b", Source: "s1", Vote: corroborate.Deny},
		{Fact: "b", Source: "s2", Vote: corroborate.Affirm},
	}
	st := corroborate.NewStream()
	ss := corroborate.NewShardedStream(4)
	if ss.Shards() != 4 {
		t.Fatalf("Shards = %d", ss.Shards())
	}
	want, err := st.AddBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ss.AddBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded decided %d facts, sequential %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sharded[%d] = %+v, sequential %+v", i, got[i], want[i])
		}
	}
}

func TestCheckpointPublicAPI(t *testing.T) {
	st := corroborate.NewStream()
	if _, err := st.AddBatch([]corroborate.BatchVote{
		{Fact: "a", Source: "s1", Vote: corroborate.Affirm},
		{Fact: "b", Source: "s2", Vote: corroborate.Deny},
		{Fact: "b", Source: "s3", Vote: corroborate.Affirm},
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()

	restored, err := corroborate.RestoreStream(bytes.NewReader(snapshot))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Batches() != 1 || len(restored.Decided()) != 2 {
		t.Fatalf("restored %d batches, %d facts", restored.Batches(), len(restored.Decided()))
	}
	sharded, err := corroborate.RestoreShardedStream(bytes.NewReader(snapshot), 3)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Batches() != 1 {
		t.Fatalf("sharded restore lost the batch log")
	}
	if _, err := corroborate.RestoreStream(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage restored without error")
	}
}

func TestDependVotingPublicAPI(t *testing.T) {
	d := corroborate.MotivatingExample()
	m := corroborate.DependVoting()
	r, err := m.Run(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Check(d); err != nil {
		t.Fatal(err)
	}
	matrix, err := corroborate.SourceDependence(d, r, corroborate.DependenceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(matrix) != d.NumSources() {
		t.Fatalf("matrix size %d", len(matrix))
	}
}

func TestJSONPublicAPI(t *testing.T) {
	d := corroborate.MotivatingExample()
	path := filepath.Join(t.TempDir(), "d.json")
	if err := corroborate.SaveJSON(path, d); err != nil {
		t.Fatal(err)
	}
	got, err := corroborate.LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVotes() != d.NumVotes() {
		t.Error("JSON round trip changed the dataset")
	}
	r, _ := corroborate.Voting().Run(d)
	var buf bytes.Buffer
	if err := corroborate.WriteResultJSON(&buf, d, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"method": "Voting"`) {
		t.Error("result JSON missing method")
	}
}

func TestBootstrapAndSignificancePublicAPI(t *testing.T) {
	d := corroborate.MotivatingExample()
	a, _ := corroborate.IncEstHeu().Run(d)
	b, _ := corroborate.TwoEstimate().Run(d)
	iv, err := corroborate.BootstrapAccuracy(d, a, 200, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := corroborate.Evaluate(d, a)
	if !iv.Contains(rep.Accuracy) {
		t.Errorf("interval %v should contain %v", iv, rep.Accuracy)
	}
	p := corroborate.SignificanceTest(d, a, b, 500, 1)
	if p <= 0 || p > 1 {
		t.Errorf("p-value = %v out of (0, 1]", p)
	}
}
